"""Pluggable worker transports for the shard pool.

:class:`~repro.distributed.pool.ShardWorkerPool` speaks one command protocol
(:mod:`repro.distributed.worker`) over an exchangeable wire.  A transport owns
the worker processes and moves three kinds of traffic:

* **ingest batches** — fire-and-forget, the streaming hot path;
* **control commands** — ``finalize`` / ``stats`` / ``materialize`` / ``get``
  / ``reduce`` / ``reduce_incremental`` / ``selfgen`` / ``report`` /
  ``clear`` / ``stop``;
* **replies** — one per reply-bearing control command, FIFO per worker.

Three implementations:

``queue`` (:class:`QueueTransport`, the default)
    The PR-2 wire: everything crosses on per-worker ``multiprocessing``
    FIFO queues, so each ingest batch pays one pickle and one unpickle.
    Works for every shape and dtype.

``shm`` (:class:`ShmRingTransport`)
    One :class:`~repro.distributed.ringbuf.ShmRing` per worker carries
    ingest batches as packed ``uint64`` coordinate keys (the PR-1 codec —
    exactly the routing keys, which the router hands over pre-packed so the
    hot path never packs twice) plus raw 64-bit value patterns: zero
    pickling on the hot path.  All-ones batches (``values=1``, the traffic
    workload) ship as *key-only* frames with no value payload at all; the
    worker broadcasts scalar 1 back, bit-identical by construction.  Control commands travel on a small queue
    side-channel, and FIFO ordering against in-flight batches comes from the
    ring itself: every control first publishes an empty *barrier frame*
    in-band, and the worker executes the command only when it consumes that
    frame — so a reply-bearing command is a barrier for every batch
    submitted before it and *only* those, exactly like the queue transport.
    Requires a 64-bit-packable shape, a <= 8-byte value type, and a
    total-store-order host ISA (x86-64 — the ring's lock-free handoff is
    not fenced for weakly-ordered CPUs; set ``REPRO_SHM_TRANSPORT=force``
    to override on hardware you have validated); :func:`make_transport`
    falls back to ``queue`` otherwise (e.g. the IPv6 case).

``socket`` (:class:`SocketTransport`)
    The multi-node wire (PR 7): workers are not forked by the transport at
    all — they live behind :class:`~repro.distributed.node.NodeAgent`
    endpoints, and the transport *connects* one TCP stream per worker slot.
    Ingest crosses as length-prefixed frames of the same packed ``uint64``
    keys + :class:`~repro.distributed.ringbuf.ValueCodec` value bits the shm
    ring uses (key-only for all-ones batches, pickled-COO fallback for
    unpackable IPv6 shapes and wide dtypes — so unlike ``shm`` the socket
    wire serves every configuration itself).  Control commands and replies
    travel in-band on the same stream, so FIFO barrier ordering against
    in-flight batches holds by construction — no separate barrier frames
    needed.

All transports surface worker failures the same way: a worker-side exception
is delivered as an ``("error", traceback)`` reply, and a worker that *dies*
(killed, OOM, segfault) is detected by liveness polling or stream EOF and
delivered as a ``("died", ...)`` reply — the parent gets
:class:`~repro.distributed.worker.WorkerCrash` (respectively its
:class:`~repro.distributed.worker.WorkerDied` subclass) at the next reply, or
:class:`WorkerDied` at the next push into a dead worker's ring or socket,
instead of hanging.  The error/died distinction comes from the transport's
own detection path, never from an after-the-fact pid poll — a dying worker
closes its wire before its pid disappears, so polling races.  Fault
injection tests in ``tests/distributed/test_faults.py`` pin this down for
every transport.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import platform
import queue as queue_mod
import socket as socket_mod
import struct
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..graphblas import coords
from ..graphblas import _kernels as K
from ..graphblas.types import lookup_dtype
from . import node as node_mod
from .node import RemoteWorkerHandle, parse_address
from .ringbuf import DEFAULT_RING_SLOTS, RingClosed, ShmRing, ValueCodec
from .worker import CommandExecutor, WorkerCrash, WorkerDied

__all__ = [
    "ShardTransport",
    "ProcessTransport",
    "QueueTransport",
    "ShmRingTransport",
    "SocketTransport",
    "ValueCodec",
    "make_transport",
    "shm_supported",
    "TRANSPORT_NAMES",
]

#: Transport names accepted by :func:`make_transport` and the CLI.
TRANSPORT_NAMES = ("queue", "shm", "socket")

#: How often a blocked reply wait re-checks that the worker is still alive.
_REPLY_POLL_SECONDS = 0.05

#: Idle poll interval of the shm worker loop (ring empty, control queue empty).
_WORKER_POLL_SECONDS = 0.001

#: Ring frame flags: a data frame of (key, value-bits) pairs, or an empty
#: control barrier marking where a queued command sits in the ingest order.
_DATA_FRAME = 0
_BARRIER_FRAME = 1

#: Payload of a barrier frame.
_NO_KEYS = np.empty(0, dtype=np.uint64)

#: ISAs whose total-store-order semantics make the ring's unfenced
#: publish/consume handoff sound.  Weakly-ordered hosts (AArch64 ...) fall
#: back to the queue wire unless REPRO_SHM_TRANSPORT=force.
_TSO_MACHINES = frozenset({"x86_64", "amd64", "i686", "i386"})


def _ring_memory_model_ok() -> bool:
    if os.environ.get("REPRO_SHM_TRANSPORT", "").lower() in {"force", "1"}:
        return True
    return platform.machine().lower() in _TSO_MACHINES


def shm_supported(matrix_kwargs: Optional[Dict[str, Any]]) -> bool:
    """Whether the shm wire can carry this shard configuration bit-exactly.

    Needs the logical shape to pack into one 64-bit key
    (:func:`repro.graphblas.coords.shape_split`, shared with the shard
    router), a value type of at most 8 bytes, and a total-store-order host
    ISA (see the module docstring; ``REPRO_SHM_TRANSPORT=force`` overrides).
    """
    if not _ring_memory_model_ok():
        return False
    kwargs = dict(matrix_kwargs or {})
    nrows = int(kwargs.get("nrows", 2 ** 32))
    ncols = int(kwargs.get("ncols", 2 ** 32))
    if coords.shape_split(nrows, ncols) is None:
        return False
    return lookup_dtype(kwargs.get("dtype", "fp64")).np_type.itemsize <= 8


def make_transport(
    name: str,
    nworkers: int,
    matrix_kwargs: Optional[Dict[str, Any]] = None,
    *,
    ring_slots: Optional[int] = None,
    nodes: Optional[List] = None,
    placement: Optional[List[int]] = None,
) -> "ShardTransport":
    """Build the requested transport, falling back to ``queue`` when needed.

    ``shm`` silently degrades to ``queue`` for configurations the ring cannot
    carry bit-exactly (full 64-bit IPv6 shapes, > 8-byte value types) — the
    documented fallback, mirroring how the packed kernels fall back to
    lexsort.  Check the returned transport's ``.name`` to see what is in
    force.  ``socket`` requires ``nodes`` (agent endpoints to connect to) and
    optionally ``placement`` (worker slot -> node index); it needs no
    fallback — unpackable configurations use pickled ingest frames on the
    same wire.
    """
    if name not in TRANSPORT_NAMES:
        raise ValueError(
            f"unknown transport {name!r}; expected one of {TRANSPORT_NAMES}"
        )
    if name == "socket":
        if not nodes:
            raise ValueError("the socket transport requires node addresses")
        return SocketTransport(
            nworkers, matrix_kwargs, nodes=nodes, placement=placement
        )
    if name == "shm" and shm_supported(matrix_kwargs):
        return ShmRingTransport(nworkers, matrix_kwargs, ring_slots=ring_slots)
    return QueueTransport(nworkers, matrix_kwargs)


def _mp_context():
    return mp.get_context("fork") if hasattr(os, "fork") else mp.get_context("spawn")


class ShardTransport:
    """The wire interface the pool speaks; implementations own the endpoint.

    A transport moves the three traffic kinds of the module docstring for
    ``nworkers`` worker slots.  :class:`ProcessTransport` implementations
    additionally *own* their worker processes (fork on construction);
    :class:`SocketTransport` connects to workers something else hosts.
    """

    #: Wire name ("queue", "shm", or "socket"); set by subclasses.
    name: str = ""

    nworkers: int = 0

    def send_ingest(self, worker: int, rows, cols, values, keys=None) -> None:
        """Dispatch one ``(rows, cols, values)`` batch; fire-and-forget.

        ``keys`` optionally carries the router's already-packed ``uint64``
        coordinate keys for these rows/cols (always
        ``coords.pack(rows, cols, shape_split(nrows, ncols))``); the shm and
        socket wires send them as-is instead of packing a second time.
        """
        raise NotImplementedError

    def send_control(self, worker: int, cmd: str, payload=None) -> None:
        """Dispatch one non-ingest command; replies come via :meth:`recv_reply`."""
        raise NotImplementedError

    def recv_reply(self, worker: int) -> Tuple[str, Any]:
        """Block for the next ``(status, value)`` reply from ``worker``.

        A dead worker produces a ``("died", ...)`` reply instead of a hang
        (liveness polling or stream EOF, per wire); a worker that merely
        raised replies ``("error", traceback)`` and keeps serving.
        """
        raise NotImplementedError

    def worker_alive(self, worker: int) -> bool:
        """Whether the worker behind ``worker`` slot is still running."""
        raise NotImplementedError

    def respawn(self, worker: int) -> None:
        """Replace a dead worker slot with a fresh, empty worker.

        Used by replica resynchronisation: the new worker starts from an
        empty matrix and is caught up via ``checkpoint``/``restore``.
        """
        raise NotImplementedError

    def ingest_watermark(self, worker: int) -> Optional[float]:
        """Best-effort fill fraction (0..1) of this slot's ingest wire.

        Service-layer admission control (the gateway) pauses client reads
        while the worst slot sits above its high watermark, so a slow shard
        backpressures producers instead of growing an unbounded buffer.
        ``None`` means this wire cannot measure its queue depth; callers
        treat that as "no signal", not as zero pressure.
        """
        return None

    @property
    def processes(self) -> List:
        """Process(-like) handles per slot (fault-injection tests kill these)."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop every worker / release the wire; idempotent."""
        raise NotImplementedError

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class ProcessTransport(ShardTransport):
    """Common machinery of the forking wires: worker processes, reply queues.

    Subclasses provide the worker main loop (:meth:`_spawn_args`) and the
    ingest wire (:meth:`send_ingest`); control commands and replies share the
    queue implementation here, and liveness is ``Process.is_alive`` polling.
    """

    def __init__(self, nworkers: int, matrix_kwargs: Optional[Dict[str, Any]]):
        self.nworkers = int(nworkers)
        self._matrix_kwargs = dict(matrix_kwargs or {})
        self._ctx = _mp_context()
        self._tasks = [self._ctx.Queue() for _ in range(self.nworkers)]
        self._replies = [self._ctx.Queue() for _ in range(self.nworkers)]
        self._procs: List[mp.Process] = []
        self._closed = False

    def _start(self) -> None:
        self._procs = [
            self._ctx.Process(target=self._worker_main, args=self._spawn_args(w), daemon=True)
            for w in range(self.nworkers)
        ]
        for p in self._procs:
            p.start()

    # Subclass hooks ----------------------------------------------------- #

    _worker_main = None  # staticmethod set by subclasses

    def _spawn_args(self, worker: int) -> tuple:
        raise NotImplementedError

    # Shared control/reply path ------------------------------------------ #

    def send_control(self, worker: int, cmd: str, payload=None) -> None:
        self._tasks[worker].put((cmd, payload))

    def recv_reply(self, worker: int) -> Tuple[str, Any]:
        q = self._replies[worker]
        proc = self._procs[worker]
        while True:
            try:
                return q.get(timeout=_REPLY_POLL_SECONDS)
            except queue_mod.Empty:
                if not proc.is_alive():
                    # Drain once more: the worker may have replied and died.
                    try:
                        return q.get(timeout=_REPLY_POLL_SECONDS)
                    except queue_mod.Empty:
                        return (
                            "died",
                            f"worker process died (exit code {proc.exitcode}) "
                            "without replying",
                        )

    def worker_alive(self, worker: int) -> bool:
        return self._procs[worker].is_alive()

    def respawn(self, worker: int) -> None:
        """Fork a fresh worker for this slot (its state starts empty).

        The slot's queues are *replaced*, not reused: a worker killed
        mid-read can leave a partial message in the old pipe (hanging any
        future reader), and commands the dead worker never consumed were
        already surfaced to the caller as errors — replaying them to the
        replacement would produce replies nobody is waiting for and
        desynchronise the reply stream.
        """
        old = self._procs[worker]
        if old.is_alive():  # pragma: no cover - defensive
            old.terminate()
        old.join(timeout=5)
        for q in (self._tasks[worker], self._replies[worker]):
            q.cancel_join_thread()
            q.close()
        self._tasks[worker] = self._ctx.Queue()
        self._replies[worker] = self._ctx.Queue()
        self._reset_slot_channels(worker)
        proc = self._ctx.Process(
            target=self._worker_main, args=self._spawn_args(worker), daemon=True
        )
        proc.start()
        self._procs[worker] = proc

    def _reset_slot_channels(self, worker: int) -> None:
        """Subclass hook: rebuild any extra per-slot wire state (rings)."""

    @property
    def processes(self) -> List[mp.Process]:
        """The worker processes (fault-injection tests kill these)."""
        return list(self._procs)

    # Lifecycle ---------------------------------------------------------- #

    def close(self) -> None:
        """Stop every worker and release the wire; idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in range(self.nworkers):
            try:
                self.send_control(w, "stop")
            except Exception:  # pragma: no cover - queue already torn down
                pass
        for p in self._procs:
            p.join(timeout=5)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
        for q in (*self._tasks, *self._replies):
            q.close()


# --------------------------------------------------------------------------- #
# queue transport (the PR-2 wire)
# --------------------------------------------------------------------------- #


def _queue_worker_main(worker_id, matrix_kwargs, task_queue, reply_queue) -> None:
    """Child-process loop: pop commands, run them, push replies, never crash.

    Errors are latched by the :class:`~repro.distributed.worker.CommandExecutor`
    and delivered at the next reply-bearing command so the parent raises
    :class:`WorkerCrash` instead of hanging on an empty queue.
    """
    executor = CommandExecutor(worker_id, matrix_kwargs, reply_queue)
    while True:
        cmd, payload = task_queue.get()
        if cmd == "stop":
            break
        executor.execute(cmd, payload)


class QueueTransport(ProcessTransport):
    """Everything — batches included — over pickled per-worker FIFO queues."""

    name = "queue"
    _worker_main = staticmethod(_queue_worker_main)

    def __init__(self, nworkers: int, matrix_kwargs: Optional[Dict[str, Any]] = None):
        super().__init__(nworkers, matrix_kwargs)
        self._start()

    def _spawn_args(self, worker: int) -> tuple:
        return (worker, self._matrix_kwargs, self._tasks[worker], self._replies[worker])

    def send_ingest(self, worker: int, rows, cols, values, keys=None) -> None:
        self._tasks[worker].put(("ingest", (rows, cols, values)))

    #: Undrained batches at which the task queue counts as "full" — queues
    #: are unbounded, so the watermark is nominal rather than a capacity.
    WATERMARK_DEPTH = 64

    def ingest_watermark(self, worker: int) -> Optional[float]:
        try:
            depth = self._tasks[worker].qsize()
        except (NotImplementedError, OSError):
            # qsize is unimplemented on some platforms (macOS sem_getvalue).
            return None
        return min(1.0, depth / float(self.WATERMARK_DEPTH))


# --------------------------------------------------------------------------- #
# shared-memory ring transport
# --------------------------------------------------------------------------- #


def _shm_worker_main(
    worker_id, matrix_kwargs, ring_name, task_queue, reply_queue
) -> None:
    """Shm worker loop: the ring totally orders ingest against control.

    Ingest arrives exclusively on the ring as data frames.  Every control
    command is preceded, in-band, by an empty barrier frame the parent pushed
    *before* enqueuing the command, so executing commands exactly when their
    barrier frame is consumed reproduces the queue transport's strict
    per-worker FIFO — batches submitted before a command are applied before
    it, batches submitted after it are not.  (The control queue alone could
    not provide this: its feeder thread delivers asynchronously, so a command
    could overtake or trail in-flight ring frames.)
    """
    executor = CommandExecutor(worker_id, matrix_kwargs, reply_queue)
    kwargs = dict(matrix_kwargs or {})
    spec = coords.shape_split(
        int(kwargs.get("nrows", 2 ** 32)), int(kwargs.get("ncols", 2 ** 32))
    )
    codec = ValueCodec(lookup_dtype(kwargs.get("dtype", "fp64")).np_type)
    ring = ShmRing.attach(ring_name)

    def apply_data(frame) -> None:
        keys, bits, _ = frame
        if bits is None:
            # Key-only frame: the producer proved every value's bit pattern
            # equals scalar 1 in the shard dtype, so the scalar broadcast in
            # HierarchicalMatrix.update reconstructs the identical array.
            executor.ingest(lambda: (*coords.unpack(keys, spec), 1))
        else:
            executor.ingest(
                lambda: (*coords.unpack(keys, spec), codec.decode(bits))
            )

    try:
        while True:
            frame = ring.pop()
            if frame is not None:
                if frame[2] == _BARRIER_FRAME:
                    # The matching command was enqueued right after this
                    # barrier was pushed; block until the feeder delivers it.
                    cmd, payload = task_queue.get()
                    if cmd == "stop":
                        break
                    executor.execute(cmd, payload)
                else:
                    apply_data(frame)
                continue
            try:
                cmd, payload = task_queue.get(timeout=_WORKER_POLL_SECONDS)
            except queue_mod.Empty:
                continue
            if cmd == "stop":
                break
            # The command overtook its barrier (we idled between the barrier
            # being pushed and the queue delivering): apply every data frame
            # up to that barrier first, preserving submission order.
            while True:
                frame = ring.pop()
                if frame is None:
                    time.sleep(_WORKER_POLL_SECONDS)
                    continue
                if frame[2] == _BARRIER_FRAME:
                    break
                apply_data(frame)
            executor.execute(cmd, payload)
    finally:
        ring.close()


class ShmRingTransport(ProcessTransport):
    """Ingest over per-worker shared-memory rings; control over a side queue.

    The parent sends each routed batch as ``uint64`` coordinate keys under
    the shape's :func:`~repro.graphblas.coords.shape_split` (toggle
    independent — exactly the router's keys, which
    :meth:`ShardedHierarchicalMatrix.update` hands over pre-packed) and raw
    value bits, copied into the worker's ring: the batch crosses the process
    boundary without touching pickle.  Backpressure is the ring's
    sequence-number handshake: a full ring blocks the producer until the
    worker catches up, and a dead worker raises :class:`WorkerCrash` out of
    the blocked push.  Control commands publish an in-band barrier frame
    before enqueuing, which is what serialises them against in-flight
    batches (see :func:`_shm_worker_main`).
    """

    name = "shm"
    _worker_main = staticmethod(_shm_worker_main)

    def __init__(
        self,
        nworkers: int,
        matrix_kwargs: Optional[Dict[str, Any]] = None,
        *,
        ring_slots: Optional[int] = None,
    ):
        super().__init__(nworkers, matrix_kwargs)
        nrows = int(self._matrix_kwargs.get("nrows", 2 ** 32))
        ncols = int(self._matrix_kwargs.get("ncols", 2 ** 32))
        self._spec = coords.shape_split(nrows, ncols)
        if self._spec is None:
            raise ValueError(
                f"shape {nrows}x{ncols} does not pack into a 64-bit key; "
                "use the queue transport"
            )
        self._nrows = nrows
        self._ncols = ncols
        self._codec = ValueCodec(
            lookup_dtype(self._matrix_kwargs.get("dtype", "fp64")).np_type
        )
        # Bit pattern of scalar 1 in the shard dtype: batches whose every
        # value matches it ship as key-only frames (no value payload at all
        # — the all-ones traffic workload currently dominates the wire).
        self._one_bits = np.uint64(self._codec.one_bits)
        #: Key-only ingest frames published so far (observability + tests).
        self.key_only_batches = 0
        slots = int(ring_slots) if ring_slots is not None else DEFAULT_RING_SLOTS
        self._rings = [ShmRing(slots) for _ in range(self.nworkers)]
        self._start()

    def _spawn_args(self, worker: int) -> tuple:
        return (
            worker,
            self._matrix_kwargs,
            self._rings[worker].name,
            self._tasks[worker],
            self._replies[worker],
        )

    @property
    def rings(self) -> List[ShmRing]:
        """Per-worker rings (parent-side handles; exposed for tests)."""
        return list(self._rings)

    def ingest_watermark(self, worker: int) -> Optional[float]:
        ring = self._rings[worker]
        try:
            if ring.closed:
                return None
            return min(1.0, ring.used / float(ring.capacity))
        except (OSError, ValueError):  # pragma: no cover - torn-down shm
            return None

    def _reset_slot_channels(self, worker: int) -> None:
        # A worker killed mid-pop can leave the ring's read watermark stale;
        # the replacement gets a fresh ring (same capacity) instead.
        slots = self._rings[worker].capacity
        try:
            self._rings[worker].destroy()
        except Exception:  # pragma: no cover - already torn down
            pass
        self._rings[worker] = ShmRing(slots)

    def send_ingest(self, worker: int, rows, cols, values, keys=None) -> None:
        if keys is None:
            r = K.as_index_array(rows, "rows")
            c = K.as_index_array(cols, "cols")
            if r.size == 0:
                return
            # Refuse coordinates packing would silently alias onto a wrong
            # (row, col); routed batches were already validated upstream.
            if int(r.max()) >= self._nrows or int(c.max()) >= self._ncols:
                from ..graphblas.errors import InvalidIndex

                raise InvalidIndex(
                    f"coordinate batch exceeds the {self._nrows}x{self._ncols} shape"
                )
            keys = coords.pack(r, c, self._spec)
        else:
            keys = np.ascontiguousarray(keys, dtype=np.uint64)
            if keys.size == 0:
                return
        # All-ones batches (the traffic workload's `values=1`) cross as
        # key-only frames: every value's bit pattern in the shard dtype is
        # compared against scalar 1's — an exact, dtype-aware test — and a
        # match drops the 8 value bytes per update from the wire copy.  The
        # worker broadcasts scalar 1 back, which is bit-identical by
        # construction.
        scalar = np.isscalar(values) or (
            isinstance(values, np.ndarray) and values.ndim == 0
        )
        bits = self._codec.encode(values, 1 if scalar else keys.size)
        if self._codec.encodes_to_ones(values, bits):
            self.key_only_batches += 1
            self._push(worker, keys, None, _DATA_FRAME)
            return
        if scalar:
            bits = self._codec.encode(values, keys.size)
        self._push(worker, keys, bits, _DATA_FRAME)

    def send_control(self, worker: int, cmd: str, payload=None) -> None:
        if cmd != "stop":
            # In-band ordering: the barrier frame lands in the ring before
            # the command enters the (asynchronously delivered) queue.
            self._push(worker, _NO_KEYS, _NO_KEYS, _BARRIER_FRAME)
        self._tasks[worker].put((cmd, payload))

    def _push(self, worker: int, keys, bits, flags: int) -> None:
        proc = self._procs[worker]
        try:
            self._rings[worker].push(keys, bits, flags=flags, still_alive=proc.is_alive)
        except RingClosed as exc:
            raise WorkerDied(
                f"shard worker {worker} is gone (exit code {proc.exitcode}); "
                f"ring push failed: {exc}"
            ) from exc

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for ring in self._rings:
            ring.destroy()


# --------------------------------------------------------------------------- #
# socket transport (the PR-7 multi-node wire)
# --------------------------------------------------------------------------- #


class SocketTransport(ShardTransport):
    """One TCP stream per worker slot, connected to NodeAgent endpoints.

    The transport owns no processes: each slot is a connection to a
    :class:`~repro.distributed.node.NodeAgent` (local or remote), which forks
    the worker behind it.  Ingest crosses as packed-key + raw-value-bit
    frames (key-only for all-ones batches — the shm wire's framing over TCP);
    control commands and replies share the same stream, so per-worker FIFO
    ordering — and with it the barrier semantics of reply-bearing commands —
    holds because a byte stream cannot reorder.  Configurations the binary
    frames cannot carry (unpackable IPv6 shapes, > 8-byte value types) use
    pickled ingest frames on the same connection instead of a different
    transport.

    Parameters
    ----------
    nworkers:
        Worker slots to connect.
    matrix_kwargs:
        Shard matrix configuration, forwarded to each worker via HELLO.
    nodes:
        Agent endpoints — ``"host:port"`` strings or ``(host, port)`` pairs.
    placement:
        Node index per slot; defaults to ``slot % len(nodes)`` round-robin.
        The pool overrides this for replicated slot layouts so a shard's
        primary and replica never share a node.
    """

    name = "socket"

    def __init__(
        self,
        nworkers: int,
        matrix_kwargs: Optional[Dict[str, Any]] = None,
        *,
        nodes: List,
        placement: Optional[List[int]] = None,
    ):
        self.nworkers = int(nworkers)
        self._matrix_kwargs = dict(matrix_kwargs or {})
        self._nodes = [parse_address(a) for a in nodes]
        if placement is None:
            placement = [s % len(self._nodes) for s in range(self.nworkers)]
        if len(placement) != self.nworkers:
            raise ValueError(
                f"{len(placement)} placements do not cover {self.nworkers} slots"
            )
        self.placement = [int(p) for p in placement]
        nrows = int(self._matrix_kwargs.get("nrows", 2 ** 32))
        ncols = int(self._matrix_kwargs.get("ncols", 2 ** 32))
        self._nrows, self._ncols = nrows, ncols
        self._spec = coords.shape_split(nrows, ncols)
        np_type = lookup_dtype(self._matrix_kwargs.get("dtype", "fp64")).np_type
        self._codec = ValueCodec(np_type) if np_type.itemsize <= 8 else None
        #: Key-only ingest frames sent so far (observability + tests).
        self.key_only_batches = 0
        self._conns: List = []
        self._handles: List[RemoteWorkerHandle] = []
        self._closed = False
        try:
            for slot in range(self.nworkers):
                self._connect(slot)
        except Exception:
            self.close()
            raise

    def _connect(self, slot: int) -> None:
        conn = socket_mod.create_connection(self._nodes[self.placement[slot]], timeout=30)
        conn.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
        node_mod.send_pickled(
            conn,
            node_mod.F_HELLO,
            {"slot": slot, "matrix_kwargs": self._matrix_kwargs},
        )
        # The 30s timeout stays armed through the HELLO exchange: a rejoin
        # re-dial can reach an endpoint that accepts but never serves (e.g.
        # an agent mid-restart), and an unbounded recv here would wedge the
        # supervisor instead of surfacing a retryable failure.
        try:
            frame = node_mod.recv_frame(conn)
        except socket_mod.timeout:
            frame = None
        if frame is None or frame[0] != node_mod.F_HELLO_ACK:
            conn.close()
            raise WorkerCrash(
                f"node agent at {self._nodes[self.placement[slot]]} did not "
                f"acknowledge worker slot {slot}"
            )
        conn.settimeout(None)
        ack = pickle.loads(bytes(frame[1]))
        handle = RemoteWorkerHandle(int(ack["pid"]))
        if slot < len(self._conns):
            self._conns[slot] = conn
            self._handles[slot] = handle
        else:
            self._conns.append(conn)
            self._handles.append(handle)

    # Wire implementation ------------------------------------------------- #

    def send_ingest(self, worker: int, rows, cols, values, keys=None) -> None:
        if self._spec is not None and self._codec is not None:
            if keys is None:
                r = K.as_index_array(rows, "rows")
                c = K.as_index_array(cols, "cols")
                if r.size == 0:
                    return
                if int(r.max()) >= self._nrows or int(c.max()) >= self._ncols:
                    from ..graphblas.errors import InvalidIndex

                    raise InvalidIndex(
                        f"coordinate batch exceeds the {self._nrows}x{self._ncols} shape"
                    )
                keys = coords.pack(r, c, self._spec)
            else:
                keys = np.ascontiguousarray(keys, dtype=np.uint64)
                if keys.size == 0:
                    return
            scalar = np.isscalar(values) or (
                isinstance(values, np.ndarray) and values.ndim == 0
            )
            bits = self._codec.encode(values, 1 if scalar else keys.size)
            if self._codec.encodes_to_ones(values, bits):
                self.key_only_batches += 1
                self._send(worker, node_mod.F_DATA_KEYONLY, keys.tobytes())
                return
            if scalar:
                bits = self._codec.encode(values, keys.size)
            self._send(worker, node_mod.F_DATA, keys.tobytes() + bits.tobytes())
            return
        # Unpackable shape / wide dtype: pickled COO on the same stream.
        self._send(
            worker,
            node_mod.F_DATA_PICKLED,
            pickle.dumps((rows, cols, values), protocol=pickle.HIGHEST_PROTOCOL),
        )

    def ingest_watermark(self, worker: int) -> Optional[float]:
        # Linux SIOCOUTQ (== TIOCOUTQ): bytes queued in the kernel send
        # buffer that the worker has not yet drained, normalised by the
        # socket's send-buffer size.  Not available on every platform, so
        # any failure degrades to "no signal".
        try:
            import fcntl
            import termios

            conn = self._conns[worker]
            raw = fcntl.ioctl(conn.fileno(), termios.TIOCOUTQ, b"\x00" * 4)
            unsent = struct.unpack("@i", raw)[0]
            sndbuf = conn.getsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_SNDBUF)
            if sndbuf <= 0:
                return None
            return min(1.0, max(0, unsent) / float(sndbuf))
        except (ImportError, AttributeError, OSError, ValueError):
            return None

    def send_control(self, worker: int, cmd: str, payload=None) -> None:
        try:
            self._send(
                worker,
                node_mod.F_CONTROL,
                pickle.dumps((cmd, payload), protocol=pickle.HIGHEST_PROTOCOL),
            )
        except WorkerCrash:
            if cmd != "stop":
                # Match the queue wire: sending a control to a dead worker
                # succeeds quietly; the death surfaces at recv_reply.
                pass

    def _send(self, worker: int, ftype: int, payload: bytes) -> None:
        try:
            node_mod.send_frame(self._conns[worker], ftype, payload)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerDied(
                f"shard worker {worker} is gone; socket send failed: {exc}"
            ) from exc

    def recv_reply(self, worker: int) -> Tuple[str, Any]:
        frame = node_mod.recv_frame(self._conns[worker])
        if frame is None or frame[0] != node_mod.F_REPLY:
            # EOF delivers buffered replies first, so reaching this point
            # means the worker truly died before replying — the stream
            # analogue of the queue wire's liveness-poll timeout.
            return (
                "died",
                f"worker process died (connection to pid "
                f"{self._handles[worker].pid} lost) without replying",
            )
        return pickle.loads(bytes(frame[1]))

    def worker_alive(self, worker: int) -> bool:
        return self._handles[worker].is_alive()

    def respawn(self, worker: int) -> None:
        """Reconnect the slot: the agent forks a fresh (empty) worker."""
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._connect(worker)

    @property
    def processes(self) -> List[RemoteWorkerHandle]:
        """Process-like pid handles (valid for agents on this machine)."""
        return list(self._handles)

    # Lifecycle ----------------------------------------------------------- #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in range(len(self._conns)):
            try:
                self.send_control(worker, "stop")
            except Exception:  # pragma: no cover - peer already gone
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
