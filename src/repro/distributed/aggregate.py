"""Figure 2 assembly: combine measured rates, the cluster model, and published curves.

This module produces the rate-versus-servers table that reproduces Figure 2:

* the *Hierarchical GraphBLAS* series comes from a locally measured
  per-instance rate extrapolated by :class:`~repro.distributed.supercloud.SuperCloudModel`;
* the *Hierarchical D4M* series is extrapolated the same way from the measured
  hierarchical-D4M per-instance rate (and cross-checked against the published
  1.9e9 figure);
* the database systems (Accumulo, SciDB, CrateDB, Oracle TPC-C) are carried as
  published reference curves because they cannot be run offline.

The output is a list of plain dict rows so both pytest-benchmark reports and
the CLI can print the same table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.published import PublishedSeries, published_series
from .supercloud import ClusterConfig, ScalingPoint, SuperCloudModel

__all__ = ["Figure2Row", "build_figure2_table", "format_table", "DEFAULT_SERVER_COUNTS"]

#: Server counts reported for Figure 2 (log-spaced from 1 to the paper's 1,100).
DEFAULT_SERVER_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1100)


@dataclass(frozen=True)
class Figure2Row:
    """One (system, servers) point of the Figure 2 table.

    Attributes
    ----------
    system:
        System label (matches the figure's legend).
    servers:
        Number of server nodes.
    updates_per_second:
        Aggregate sustained update rate at that scale.
    source:
        ``"measured+model"`` for series extrapolated from local measurements,
        ``"published"`` for literature reference curves.
    """

    system: str
    servers: int
    updates_per_second: float
    source: str

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "servers": self.servers,
            "updates_per_second": self.updates_per_second,
            "source": self.source,
        }


def build_figure2_table(
    measured_rates: Dict[str, float],
    *,
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    config: Optional[ClusterConfig] = None,
    include_published: bool = True,
) -> List[Figure2Row]:
    """Build the Figure 2 table.

    Parameters
    ----------
    measured_rates:
        Mapping from system label to locally measured *per-instance* updates
        per second (e.g. ``{"Hierarchical GraphBLAS": 1.4e6,
        "Hierarchical D4M": 9e4}``).  Each is extrapolated across servers by
        the SuperCloud model.
    server_counts:
        The x-axis of the figure.
    config:
        Cluster configuration (defaults to the paper's 28 processes/node).
    include_published:
        Also emit the published reference curves.
    """
    model = SuperCloudModel(config)
    rows: List[Figure2Row] = []
    for system, per_instance in measured_rates.items():
        for point in model.scaling_series(per_instance, server_counts):
            rows.append(
                Figure2Row(
                    system=system,
                    servers=point.nodes,
                    updates_per_second=point.aggregate_rate,
                    source="measured+model",
                )
            )
    if include_published:
        for series in published_series().values():
            for n in server_counts:
                max_published = max(series.servers)
                if n > max_published and series.name not in (
                    "Hierarchical GraphBLAS (paper)",
                    "Hierarchical D4M",
                ):
                    # Database systems were never demonstrated beyond their
                    # published scale; do not extrapolate them past it.
                    continue
                rows.append(
                    Figure2Row(
                        system=series.name,
                        servers=int(n),
                        updates_per_second=series.rate_at(int(n)),
                        source="published",
                    )
                )
    return rows


def format_table(rows: Sequence[Figure2Row]) -> str:
    """Render Figure 2 rows as an aligned text table (one line per point)."""
    header = f"{'system':<36} {'servers':>8} {'updates/s':>16} {'source':>16}"
    lines = [header, "-" * len(header)]
    for row in sorted(rows, key=lambda r: (r.system, r.servers)):
        lines.append(
            f"{row.system:<36} {row.servers:>8d} {row.updates_per_second:>16.3e} {row.source:>16}"
        )
    return "\n".join(lines)
