"""Single-producer/single-consumer shared-memory ring buffer for ingest batches.

The queue transport pays one pickle + one unpickle per routed batch — the
dominant IPC cost in the sharded engine (the ``rate_wall`` vs ``rate_sum``
gap tracked in ``BENCH_kernels.json``).  This ring carries a batch across the
process boundary as two raw ``uint64`` array copies instead: the packed
coordinate keys of the PR-1 codec (``(row << col_bits) | col``) and the raw
64-bit patterns of the values.  No serialisation happens on either side.

Layout of the shared block (all slots are little-endian ``uint64``)::

    header (24 slots; producer and consumer counters on separate cache lines)
      [0]  write_seq        total ring slots published by the producer
      [1]  batches_written  frames published by the producer
      [8]  read_seq         total ring slots consumed by the consumer
      [9]  batches_read     frames consumed by the consumer
      [16] closed           either side sets 1 to refuse further pushes
      [17] capacity         slot count, written once by the creator
    keys   [capacity slots]
    bits   [capacity slots]

A *frame* is one pushed batch: a single header slot (``keys[i] = n``, the
payload length; ``bits[i]`` = caller-defined frame flags) followed by ``n``
key slots and ``n`` value slots, wrapping modulo the capacity.  The header
length word's top bit marks a *key-only* frame (``push(keys)`` with no value
array): the value slots stay reserved but are neither written nor read, and
``pop`` returns ``bits=None`` — the shm transport uses this to ship all-ones
traffic batches with half the copy bytes.
``write_seq``/``read_seq`` are monotone slot counters — the watermark
handshake: free space is ``capacity - (write_seq - read_seq)``, the producer
spins (with an exponential-backoff sleep and an optional liveness probe)
while a frame does not fit, and the consumer spins while the ring is empty.
``batches_written``/``batches_read`` are frame sequence numbers.  The shm
transport uses the flags word to interleave empty *control-barrier* frames
with data frames, so the ring itself totally orders ingest against control
commands.

Correctness of the lock-free handoff relies on the SPSC discipline: exactly
one producer thread and one consumer process.  The producer writes the
payload slots first and publishes ``write_seq`` last; the consumer reads
``write_seq`` first and advances ``read_seq`` only after copying the payload
out.  Counters are aligned 8-byte stores (atomic on the 64-bit platforms
NumPy supports), and the publish/consume ordering is safe on
total-store-order hardware (x86-64) and in practice on AArch64, where the
interpreter's own synchronisation serialises far more than these two stores.
Property tests in ``tests/distributed/test_ringbuf.py`` exercise wraparound,
backpressure, and sequence agreement in one process; the conformance suite
exercises the cross-process path.
"""

from __future__ import annotations

import os
import time
from multiprocessing import shared_memory
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["ShmRing", "RingClosed", "RingTimeout", "ValueCodec", "DEFAULT_RING_SLOTS"]


class ValueCodec:
    """Bit-exact ``values <-> uint64`` wire codec for one shard value type.

    The sender converts values to the shard's dtype — the same (single)
    conversion :meth:`HierarchicalMatrix.update
    <repro.core.HierarchicalMatrix.update>` would apply worker-side on the
    queue wire — then transmits *raw bit patterns*: 8-byte types cross as
    their own bits, narrower types as zero-padded raw bytes.  No numeric
    widening happens after the dtype conversion, so even exotic payloads
    (signalling NaNs, negative zeros) cross unchanged and every framing
    built on this codec (ring ingest frames, migration slab payloads)
    remains bit-identical to the pickled wire.  Types wider than 8 bytes are
    not representable (the transport factory falls back to the queue wire
    for those).  Producer and consumer share one machine, so native byte
    order is consistent by construction.
    """

    def __init__(self, np_type) -> None:
        self.np_type = np.dtype(np_type)
        self.itemsize = int(self.np_type.itemsize)
        if self.itemsize > 8:
            raise ValueError(
                f"value type {self.np_type} does not fit the 8-byte ring slot"
            )

    def encode(self, values, n: int) -> np.ndarray:
        """Bit pattern of ``values`` (scalar broadcast over ``n``) as uint64."""
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            typed = np.full(n, values, dtype=self.np_type)
        else:
            typed = np.ascontiguousarray(np.asarray(values), dtype=self.np_type)
        if self.itemsize == 8:
            return typed.view(np.uint64)
        out = np.zeros(typed.size, dtype=np.uint64)
        out.view(np.uint8).reshape(-1, 8)[:, : self.itemsize] = typed.view(
            np.uint8
        ).reshape(-1, self.itemsize)
        return out

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Invert :meth:`encode` back to a typed value array."""
        if self.itemsize == 8:
            return bits.view(self.np_type)
        raw = np.ascontiguousarray(
            bits.view(np.uint8).reshape(-1, 8)[:, : self.itemsize]
        )
        return raw.view(self.np_type).reshape(-1)

    @property
    def one_bits(self) -> np.uint64:
        """The encoded bit pattern of the scalar ``1`` in this value type.

        Key-only framing (shm ring and socket wire alike) elides the value
        payload when every value equals 1 — the dominant one-count-per-packet
        traffic workload — and the consumer re-synthesises it from this word.
        """
        return self.encode(1, 1)[0]

    def encodes_to_ones(self, values, bits: np.ndarray) -> bool:
        """Whether ``bits`` (the encoding of ``values``) is uniformly the
        all-ones pattern, i.e. the value payload can be elided on the wire.

        ``values`` is consulted only for the scalar fast path (one word
        compared instead of the whole array).
        """
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            return bool(bits[:1] == self.one_bits) if bits.size else True
        return bool(np.all(bits == self.one_bits))

#: Default ring capacity in slots (16 bytes of payload per slot across the
#: two arrays): 128Ki slots = 2 MiB per worker — enough to pipeline several
#: 50k-update batches without the producer waiting mid-split.
DEFAULT_RING_SLOTS = 1 << 17

_HEADER_SLOTS = 24
_W, _BW = 0, 1  # producer cache line
_R, _BR = 8, 9  # consumer cache line
_CLOSED, _CAPACITY = 16, 17  # cold line

#: Top bit of a frame's length word marks a *key-only* frame: the producer
#: wrote no value slots (the consumer substitutes the implied all-ones
#: payload), halving the bytes copied for the dominant ``values=1`` traffic
#: workload.  The bit lives in the ring-owned length word, so the
#: caller-defined ``flags`` word stays fully opaque.
_KEYS_ONLY_BIT = np.uint64(1 << 63)
_LEN_MASK = (1 << 63) - 1


class RingClosed(RuntimeError):
    """Pushed to a ring whose peer is gone or which was explicitly closed."""


class RingTimeout(TimeoutError):
    """A bounded push/pop wait expired before space/data appeared."""


class ShmRing:
    """SPSC ring of ``(uint64 key, uint64 value-bits)`` batch frames.

    Parameters
    ----------
    capacity:
        Ring size in slots.  A frame of ``n`` items needs ``n + 1`` slots;
        batches larger than ``capacity - 1`` are split by :meth:`push`.
    name:
        Shared-memory block name.  Required when attaching
        (``create=False``); auto-generated when creating.
    create:
        Create (and own) the block, or attach to an existing one.  The
        creator should eventually call :meth:`destroy`; attachers only
        :meth:`close`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RING_SLOTS,
        *,
        name: Optional[str] = None,
        create: bool = True,
    ):
        self._created = bool(create)
        if create:
            capacity = int(capacity)
            if capacity < 2:
                raise ValueError("ring capacity must be at least 2 slots")
            nbytes = (_HEADER_SLOTS + 2 * capacity) * 8
            self._shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        else:
            if name is None:
                raise ValueError("attaching to a ring requires its name")
            self._shm = shared_memory.SharedMemory(name=name)
        self._name = self._shm.name
        # Fork copies this object into worker processes; only the process
        # that created the block may ever unlink it (see destroy()).
        self._owner_pid = os.getpid() if create else -1
        hdr = np.ndarray((_HEADER_SLOTS,), dtype=np.uint64, buffer=self._shm.buf)
        if create:
            hdr[:] = 0
            hdr[_CAPACITY] = capacity
        else:
            capacity = int(hdr[_CAPACITY])
        self._capacity = capacity
        self._hdr = hdr
        offset = _HEADER_SLOTS * 8
        self._keys = np.ndarray(
            (capacity,), dtype=np.uint64, buffer=self._shm.buf, offset=offset
        )
        self._bits = np.ndarray(
            (capacity,), dtype=np.uint64, buffer=self._shm.buf, offset=offset + capacity * 8
        )

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach to an existing ring by shared-memory block name."""
        return cls(name=name, create=False)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Shared-memory block name (pass to :meth:`attach` in the peer)."""
        return self._name

    @property
    def capacity(self) -> int:
        """Ring size in slots."""
        return self._capacity

    @property
    def write_seq(self) -> int:
        """Total slots published by the producer (monotone)."""
        return int(self._hdr[_W])

    @property
    def read_seq(self) -> int:
        """Total slots consumed by the consumer (monotone)."""
        return int(self._hdr[_R])

    @property
    def batches_written(self) -> int:
        """Frames published by the producer (the producer-side watermark)."""
        return int(self._hdr[_BW])

    @property
    def batches_read(self) -> int:
        """Frames consumed by the consumer (the consumer-side watermark)."""
        return int(self._hdr[_BR])

    @property
    def used(self) -> int:
        """Slots currently occupied."""
        return int(self._hdr[_W]) - int(self._hdr[_R])

    @property
    def free(self) -> int:
        """Slots currently free."""
        return self._capacity - self.used

    @property
    def closed(self) -> bool:
        """Whether either side marked the ring closed."""
        return bool(self._hdr[_CLOSED])

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #

    def push(
        self,
        keys: np.ndarray,
        bits: Optional[np.ndarray] = None,
        *,
        flags: int = 0,
        timeout: Optional[float] = None,
        poll: float = 5e-5,
        still_alive: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Publish one batch, splitting it into frames that fit the ring.

        Blocks while the ring lacks space (the backpressure handshake),
        sleeping with exponential backoff between checks.  ``still_alive`` is
        probed during the wait so a dead consumer raises :class:`RingClosed`
        instead of spinning forever; a bounded ``timeout`` raises
        :class:`RingTimeout`.  ``flags`` is an opaque per-frame word handed
        back by :meth:`pop` (every split frame carries the same flags).
        Returns the number of frames published (>= 1; more when the batch was
        split because it exceeds ``capacity - 1`` payload slots).

        ``bits=None`` publishes a *key-only* frame: no value slots are
        written or read — :meth:`pop` hands back ``bits=None`` and the
        consumer supplies the payload implied by its protocol (the shm
        transport uses this for all-ones traffic batches, halving the bytes
        copied per update).  The frame still reserves its parallel value
        slots (the ring is a pair of parallel arrays), so only the copies
        are saved, never the capacity accounting.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        keys_only = bits is None
        if not keys_only:
            bits = np.ascontiguousarray(bits, dtype=np.uint64)
            if keys.size != bits.size:
                raise ValueError(
                    f"keys and value-bits differ in length ({keys.size} vs {bits.size})"
                )
        deadline = None if timeout is None else time.monotonic() + timeout
        max_payload = self._capacity - 1
        frames = 0
        start = 0
        while True:
            stop = min(start + max_payload, keys.size)
            self._push_frame(
                keys[start:stop],
                None if keys_only else bits[start:stop],
                flags,
                deadline,
                poll,
                still_alive,
            )
            frames += 1
            start = stop
            if start >= keys.size:
                return frames

    def _push_frame(self, keys, bits, flags, deadline, poll, still_alive) -> None:
        n = keys.size
        need = n + 1
        if self._hdr[_CLOSED]:
            raise RingClosed("ring is closed")
        w = int(self._hdr[_W])
        backoff = poll
        while self._capacity - (w - int(self._hdr[_R])) < need:
            if self._hdr[_CLOSED]:
                raise RingClosed("ring is closed")
            if still_alive is not None and not still_alive():
                raise RingClosed("ring consumer is gone")
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(
                    f"no space for a {need}-slot frame "
                    f"(capacity {self._capacity}, used {self.used})"
                )
            # Exponential backoff: a long wait means the consumer is busy
            # applying batches, and on shared cores a tight spin here would
            # steal exactly the cycles it is waiting for.
            time.sleep(backoff)
            backoff = min(backoff * 2, 0.002)
        idx = w % self._capacity
        header = np.uint64(n)
        if bits is None:
            header |= _KEYS_ONLY_BIT
        self._keys[idx] = header
        self._bits[idx] = np.uint64(flags)
        self._copy_in(self._keys, idx + 1, keys)
        if bits is not None:
            self._copy_in(self._bits, idx + 1, bits)
        # Publish order matters (see module docstring): payload first, then
        # the frame counter, then the slot counter the consumer polls.
        self._hdr[_BW] += np.uint64(1)
        self._hdr[_W] = np.uint64(w + need)

    def _copy_in(self, ring: np.ndarray, start: int, data: np.ndarray) -> None:
        start %= self._capacity
        first = min(self._capacity - start, data.size)
        ring[start : start + first] = data[:first]
        if data.size > first:
            ring[: data.size - first] = data[first:]

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #

    def pop(self) -> Optional[Tuple[np.ndarray, Optional[np.ndarray], int]]:
        """Consume the next frame, or return ``None`` when the ring is empty.

        Returns fresh ``(keys, value_bits, flags)`` — the arrays are copies
        (the slots are recycled as soon as ``read_seq`` advances) and
        ``flags`` is the word the producer passed to :meth:`push`.
        ``value_bits`` is ``None`` for a key-only frame (the producer passed
        ``bits=None``); the consumer supplies the implied payload.
        """
        r = int(self._hdr[_R])
        if r == int(self._hdr[_W]):
            return None
        idx = r % self._capacity
        header = int(self._keys[idx])
        n = header & _LEN_MASK
        flags = int(self._bits[idx])
        keys = self._copy_out(self._keys, idx + 1, n)
        bits = (
            None
            if header & int(_KEYS_ONLY_BIT)
            else self._copy_out(self._bits, idx + 1, n)
        )
        # Consume order: payload copied out first, then the slots released.
        self._hdr[_BR] += np.uint64(1)
        self._hdr[_R] = np.uint64(r + n + 1)
        return keys, bits, flags

    def _copy_out(self, ring: np.ndarray, start: int, n: int) -> np.ndarray:
        start %= self._capacity
        out = np.empty(n, dtype=np.uint64)
        first = min(self._capacity - start, n)
        out[:first] = ring[start : start + first]
        if n > first:
            out[first:] = ring[: n - first]
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def mark_closed(self) -> None:
        """Refuse further pushes (both sides observe :attr:`closed`)."""
        self._hdr[_CLOSED] = np.uint64(1)

    def close(self) -> None:
        """Detach from the block; idempotent.  Attachers stop here."""
        if self._shm is None:
            return
        self._hdr = self._keys = self._bits = None
        # Attaching registers the block with the (session-global) resource
        # tracker again, but its cache is a set: the creator's unlink sends
        # the one unregister that clears the entry, so attachers must NOT
        # unregister here — a second message crashes the tracker's loop.
        self._shm.close()
        self._shm = None

    def destroy(self) -> None:
        """Unlink (creating process only) and close; idempotent.

        The PID check keeps fork-inherited copies of a creator handle — every
        worker child holds them — from unlinking the block when that child
        exits while the parent (or a sibling worker) is still attached.
        """
        if self._shm is None:
            return
        if self._created and os.getpid() == self._owner_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.destroy()
        except Exception:
            pass
