"""Local parallel ingest engine.

The paper's scaling experiment launches many independent processes, each
streaming its own power-law graph into its own hierarchical hypersparse
matrix.  This module reproduces that structure faithfully on one machine with
:mod:`multiprocessing`: every worker process owns a private
:class:`~repro.core.HierarchicalMatrix`, generates its own shard of the
workload, streams it, and reports its measured update rate; the engine sums
the per-worker rates exactly the way the paper sums per-process rates across
the SuperCloud.  The same worker function doubles as the per-instance rate
measurement that :class:`~repro.distributed.supercloud.SuperCloudModel`
extrapolates from.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import HierarchicalMatrix
from ..workloads.powerlaw import powerlaw_edges

__all__ = ["WorkerReport", "ParallelIngestResult", "ingest_worker", "ParallelIngestEngine"]


@dataclass(frozen=True)
class WorkerReport:
    """Result of one worker process's ingest.

    Attributes
    ----------
    worker_id:
        0-based worker index.
    total_updates:
        Element updates streamed by this worker.
    elapsed_seconds:
        Wall-clock time spent inside ``update`` calls.
    updates_per_second:
        This worker's measured rate.
    final_nvals:
        Stored entries in the worker's materialised matrix (sanity check).
    cascades:
        Per-layer cascade counts.
    """

    worker_id: int
    total_updates: int
    elapsed_seconds: float
    updates_per_second: float
    final_nvals: int
    cascades: List[int] = field(default_factory=list)


@dataclass
class ParallelIngestResult:
    """Aggregate of all worker reports.

    Attributes
    ----------
    workers:
        Per-worker reports.
    total_updates:
        Sum of updates across workers.
    wall_seconds:
        Wall-clock time of the whole parallel phase (includes process startup).
    aggregate_rate_sum:
        Sum of per-worker rates — the quantity the paper aggregates across the
        SuperCloud (independent instances, independent clocks).
    aggregate_rate_wall:
        ``total_updates / wall_seconds`` — the stricter single-clock rate.
    """

    workers: List[WorkerReport]
    total_updates: int
    wall_seconds: float
    aggregate_rate_sum: float
    aggregate_rate_wall: float

    @property
    def nworkers(self) -> int:
        """Number of workers that ran."""
        return len(self.workers)

    @property
    def mean_worker_rate(self) -> float:
        """Mean per-worker updates/second."""
        if not self.workers:
            return 0.0
        return float(np.mean([w.updates_per_second for w in self.workers]))


def ingest_worker(
    worker_id: int,
    total_updates: int,
    batch_size: int,
    cuts: Sequence[int],
    *,
    nnodes: int = 2 ** 32,
    alpha: float = 1.3,
    distinct_nodes: int = 2 ** 22,
    seed: Optional[int] = None,
) -> WorkerReport:
    """Run one complete per-process ingest (the unit of the paper's experiment).

    Generates ``total_updates`` power-law edges in ``batch_size`` batches and
    streams them into a private hierarchical hypersparse matrix, timing only
    the update path (generation time is excluded, as in the paper where data
    already resides in memory arrays before the timed insert loop).
    """
    matrix = HierarchicalMatrix(nnodes, nnodes, "fp64", cuts=list(cuts))
    rng_seed = (seed if seed is not None else 0) + worker_id * 1_000_003
    nbatches = max(total_updates // batch_size, 1)
    elapsed = 0.0
    done = 0
    for b in range(nbatches):
        rows, cols = powerlaw_edges(
            batch_size,
            alpha=alpha,
            nnodes=nnodes,
            distinct_nodes=distinct_nodes,
            seed=rng_seed + b,
        )
        values = np.ones(batch_size, dtype=np.float64)
        start = time.perf_counter()
        matrix.update(rows, cols, values)
        elapsed += time.perf_counter() - start
        done += batch_size
    rate = done / elapsed if elapsed > 0 else 0.0
    stats = matrix.stats
    return WorkerReport(
        worker_id=worker_id,
        total_updates=done,
        elapsed_seconds=elapsed,
        updates_per_second=rate,
        final_nvals=matrix.materialize().nvals,
        cascades=list(stats.cascades) if stats is not None else [],
    )


def _worker_entry(args) -> WorkerReport:
    """Pickle-friendly wrapper used by the process pool."""
    worker_id, total_updates, batch_size, cuts, kwargs = args
    return ingest_worker(worker_id, total_updates, batch_size, cuts, **kwargs)


class ParallelIngestEngine:
    """Runs many independent ingest workers and aggregates their rates.

    Parameters
    ----------
    nworkers:
        Number of worker processes (default: the machine's CPU count).
    cuts:
        Hierarchical cut configuration for every worker.
    use_processes:
        When False the workers run sequentially in-process (useful on
        single-core machines and in unit tests where fork overhead dominates);
        the aggregation logic is identical.

    Examples
    --------
    >>> engine = ParallelIngestEngine(nworkers=2, cuts=[1000, 10000], use_processes=False)
    >>> result = engine.run(updates_per_worker=20000, batch_size=1000)
    >>> result.total_updates
    40000
    """

    def __init__(
        self,
        nworkers: Optional[int] = None,
        *,
        cuts: Sequence[int] = (2 ** 17, 2 ** 20, 2 ** 23),
        use_processes: bool = True,
    ):
        self.nworkers = int(nworkers) if nworkers is not None else (os.cpu_count() or 1)
        if self.nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.cuts = list(cuts)
        self.use_processes = use_processes

    def run(
        self,
        updates_per_worker: int = 1_000_000,
        batch_size: int = 100_000,
        **worker_kwargs,
    ) -> ParallelIngestResult:
        """Run the parallel ingest and aggregate worker reports."""
        args = [
            (w, int(updates_per_worker), int(batch_size), self.cuts, worker_kwargs)
            for w in range(self.nworkers)
        ]
        wall_start = time.perf_counter()
        if self.use_processes and self.nworkers > 1:
            ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context("spawn")
            with ctx.Pool(processes=self.nworkers) as pool:
                reports = pool.map(_worker_entry, args)
        else:
            reports = [_worker_entry(a) for a in args]
        wall = time.perf_counter() - wall_start
        total = sum(r.total_updates for r in reports)
        rate_sum = sum(r.updates_per_second for r in reports)
        rate_wall = total / wall if wall > 0 else 0.0
        return ParallelIngestResult(
            workers=list(reports),
            total_updates=total,
            wall_seconds=wall,
            aggregate_rate_sum=rate_sum,
            aggregate_rate_wall=rate_wall,
        )

    def measure_single_instance_rate(
        self, updates: int = 1_000_000, batch_size: int = 100_000, **worker_kwargs
    ) -> float:
        """Measure the per-instance rate the SuperCloud model extrapolates from."""
        report = ingest_worker(0, int(updates), int(batch_size), self.cuts, **worker_kwargs)
        return report.updates_per_second
