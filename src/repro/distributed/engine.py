"""Local parallel ingest engine.

The paper's scaling experiment launches many independent processes, each
streaming its own power-law graph into its own hierarchical hypersparse
matrix.  This module reproduces that structure on one machine, running on top
of the persistent :class:`~repro.distributed.pool.ShardWorkerPool` — the
self-generated workload of the paper is dispatched to the long-lived workers
as one stream source among several (externally fed streams go through
:class:`~repro.distributed.sharded.ShardedHierarchicalMatrix` on the same
pool).  Every worker owns a private :class:`~repro.core.HierarchicalMatrix`,
streams its shard of the workload, and reports its measured update rate; the
engine sums per-worker rates exactly the way the paper sums per-process rates
across the SuperCloud.  The same worker function doubles as the per-instance
rate measurement that :class:`~repro.distributed.supercloud.SuperCloudModel`
extrapolates from.

Measurement fidelity (fixed in PR 2): a worker streams *exactly*
``total_updates`` elements — the remainder batch is no longer silently
dropped (and small requests no longer round up to a full batch) — and the
deferred layer-1 flush is forced inside the timed section, so
``updates_per_second`` pays for the pending-tuple sort/merge the stream
deferred instead of hiding it in the untimed ``materialize``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core import HierarchicalMatrix
from .pool import ShardWorkerPool, WorkerReport, stream_powerlaw

__all__ = [
    "WorkerReport",
    "ParallelIngestResult",
    "ingest_worker",
    "ParallelIngestEngine",
]


@dataclass
class ParallelIngestResult:
    """Aggregate of all worker reports.

    Attributes
    ----------
    workers:
        Per-worker reports.
    total_updates:
        Sum of updates across workers.
    wall_seconds:
        Wall-clock time of the whole parallel phase (includes process startup).
    aggregate_rate_sum:
        Sum of per-worker rates — the quantity the paper aggregates across the
        SuperCloud (independent instances, independent clocks).
    aggregate_rate_wall:
        ``total_updates / wall_seconds`` — the stricter single-clock rate.
    """

    workers: List[WorkerReport]
    total_updates: int
    wall_seconds: float
    aggregate_rate_sum: float
    aggregate_rate_wall: float

    @property
    def nworkers(self) -> int:
        """Number of workers that ran."""
        return len(self.workers)

    @property
    def mean_worker_rate(self) -> float:
        """Mean per-worker updates/second."""
        if not self.workers:
            return 0.0
        return float(np.mean([w.updates_per_second for w in self.workers]))


def ingest_worker(
    worker_id: int,
    total_updates: int,
    batch_size: int,
    cuts: Sequence[int],
    *,
    nnodes: int = 2 ** 32,
    alpha: float = 1.3,
    distinct_nodes: int = 2 ** 22,
    seed: Optional[int] = None,
) -> WorkerReport:
    """Run one complete per-process ingest (the unit of the paper's experiment).

    Generates exactly ``total_updates`` power-law edges in ``batch_size``
    batches (the last batch partial when needed) and streams them into a
    private hierarchical hypersparse matrix, timing the update path plus the
    forced final flush of deferred pending tuples; generation time is
    excluded, as in the paper where data already resides in memory arrays
    before the timed insert loop.
    """
    matrix = HierarchicalMatrix(nnodes, nnodes, "fp64", cuts=list(cuts))
    done, elapsed = stream_powerlaw(
        matrix,
        worker_id,
        total_updates,
        batch_size,
        nnodes=nnodes,
        alpha=alpha,
        distinct_nodes=distinct_nodes,
        seed=seed,
    )
    rate = done / elapsed if elapsed > 0 else 0.0
    stats = matrix.stats
    return WorkerReport(
        worker_id=worker_id,
        total_updates=done,
        elapsed_seconds=elapsed,
        updates_per_second=rate,
        final_nvals=matrix.materialize().nvals,
        cascades=list(stats.cascades) if stats is not None else [],
    )


class ParallelIngestEngine:
    """Runs many self-generating ingest workers and aggregates their rates.

    Workers are the persistent pool's long-lived shard workers executing the
    ``selfgen`` command, so the measured configuration matches the serving
    path (same worker loop, same queues) rather than a one-shot ``pool.map``.

    Parameters
    ----------
    nworkers:
        Number of worker processes (default: the machine's CPU count).
    cuts:
        Hierarchical cut configuration for every worker.
    use_processes:
        When False the workers run sequentially in-process (useful on
        single-core machines and in unit tests where fork overhead dominates);
        the aggregation logic is identical.
    transport:
        Worker wire for process-backed runs (``"queue"`` or ``"shm"``; see
        :mod:`repro.distributed.transport`).  The self-generated workload
        never ships batches across the boundary, so this mainly matters when
        comparing engine runs against externally fed sharded ingest.

    Examples
    --------
    >>> engine = ParallelIngestEngine(nworkers=2, cuts=[1000, 10000], use_processes=False)
    >>> result = engine.run(updates_per_worker=20000, batch_size=1000)
    >>> result.total_updates
    40000
    """

    def __init__(
        self,
        nworkers: Optional[int] = None,
        *,
        cuts: Sequence[int] = (2 ** 17, 2 ** 20, 2 ** 23),
        use_processes: bool = True,
        transport: str = "queue",
    ):
        self.nworkers = int(nworkers) if nworkers is not None else (os.cpu_count() or 1)
        if self.nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.cuts = list(cuts)
        self.use_processes = use_processes
        self.transport = transport

    def run(
        self,
        updates_per_worker: int = 1_000_000,
        batch_size: int = 100_000,
        **worker_kwargs,
    ) -> ParallelIngestResult:
        """Run the parallel ingest and aggregate worker reports."""
        nnodes = int(worker_kwargs.get("nnodes", 2 ** 32))
        spec = {
            "total_updates": int(updates_per_worker),
            "batch_size": int(batch_size),
            **worker_kwargs,
        }
        matrix_kwargs = {
            "nrows": nnodes,
            "ncols": nnodes,
            "dtype": "fp64",
            "cuts": self.cuts,
        }
        wall_start = time.perf_counter()
        with ShardWorkerPool(
            self.nworkers,
            matrix_kwargs=matrix_kwargs,
            use_processes=self.use_processes and self.nworkers > 1,
            transport=self.transport,
        ) as pool:
            reports = pool.request_all("selfgen", spec)
        wall = time.perf_counter() - wall_start
        total = sum(r.total_updates for r in reports)
        rate_sum = sum(r.updates_per_second for r in reports)
        rate_wall = total / wall if wall > 0 else 0.0
        return ParallelIngestResult(
            workers=list(reports),
            total_updates=total,
            wall_seconds=wall,
            aggregate_rate_sum=rate_sum,
            aggregate_rate_wall=rate_wall,
        )

    def measure_single_instance_rate(
        self, updates: int = 1_000_000, batch_size: int = 100_000, **worker_kwargs
    ) -> float:
        """Measure the per-instance rate the SuperCloud model extrapolates from."""
        report = ingest_worker(0, int(updates), int(batch_size), self.cuts, **worker_kwargs)
        return report.updates_per_second
