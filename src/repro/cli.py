"""Command-line entry points.

Six commands mirror the paper's experiments and the serving architecture:

* ``repro-ingest`` — measure the single-instance streaming update rate
  (Headline A: "over 1,000,000 updates per second in a single instance");
* ``repro-scaling`` — run the local parallel ingest engine and report the
  aggregate rate across worker processes;
* ``repro-fig2`` — print the full Figure 2 table (measured+modelled series next
  to the published reference curves);
* ``repro-shard`` — shard one externally supplied stream (power-law edges,
  synthetic packet traffic, or a replayed triple file) across K worker shards
  and report per-shard and aggregate rates plus the globally merged matrix;
* ``repro-node`` — host shard workers behind a listening TCP endpoint, the
  agent half of multi-node serving (``repro-shard --transport socket
  --nodes host:port,...`` is the router half);
* ``repro-gateway`` — serve a sharded matrix behind the asyncio ingest
  gateway (``serve``), stream a synthetic workload into a running gateway as
  a client (``send``), or query its snapshot statistics (``stats``).

Every command prints plain aligned text so output can be diffed against
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np
from typing import List, Optional, Sequence

from .baselines import (
    FlatGraphBLASIngestor,
    HierarchicalD4MIngestor,
    PAPER_HEADLINE_RATE,
)
from .core import HierarchicalMatrix
from .distributed import (
    ClusterConfig,
    ParallelIngestEngine,
    ShardedHierarchicalMatrix,
    SuperCloudModel,
    build_figure2_table,
    format_table,
)
from .workloads import (
    IngestSession,
    batched,
    normalize_batch,
    paper_stream,
    synthetic_packets,
)

__all__ = [
    "main_ingest",
    "main_scaling",
    "main_fig2",
    "main_shard",
    "main_node",
    "main_gateway",
]


def _exact_stream(batches, total: int):
    """Trim a batch stream to exactly ``total`` updates (partial final batch).

    Synthetic generators emit whole windows/batches; requesting 1,000 updates
    at a 10,000-packet window must not stream 10,000 — the same rounding class
    of measurement bug the fixed ``ingest_worker`` no longer has.
    """
    remaining = int(total)
    for batch in batches:
        if remaining <= 0:
            break
        rows, cols, values = normalize_batch(batch)
        n = int(np.asarray(rows).size)
        if n > remaining:
            rows, cols = rows[:remaining], cols[:remaining]
            if not np.isscalar(values):
                values = values[:remaining]
            n = remaining
        yield rows, cols, values
        remaining -= n


def _parse_cuts(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


# --------------------------------------------------------------------------- #
# repro-ingest
# --------------------------------------------------------------------------- #


def main_ingest(argv: Optional[Sequence[str]] = None) -> int:
    """Measure the single-instance streaming update rate (Headline A)."""
    parser = argparse.ArgumentParser(
        prog="repro-ingest",
        description="Stream a power-law workload into one hierarchical hypersparse matrix "
        "and report updates/second.",
    )
    parser.add_argument("--updates", type=int, default=1_000_000, help="total element updates")
    parser.add_argument("--batches", type=int, default=100, help="number of update batches")
    parser.add_argument(
        "--cuts", type=_parse_cuts, default=[2 ** 17, 2 ** 20, 2 ** 23],
        help="comma-separated cut thresholds, e.g. 131072,1048576,8388608",
    )
    parser.add_argument(
        "--system",
        choices=["hierarchical", "flat", "hierarchical-d4m"],
        default="hierarchical",
        help="which ingest system to measure",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", help="emit a JSON result object")
    args = parser.parse_args(argv)

    if args.system == "hierarchical":
        ingestor = HierarchicalMatrix(2 ** 32, 2 ** 32, "fp64", cuts=args.cuts)
    elif args.system == "flat":
        ingestor = FlatGraphBLASIngestor(2 ** 32, 2 ** 32)
    else:
        ingestor = HierarchicalD4MIngestor(cuts=args.cuts)

    session = IngestSession(ingestor, args.system)
    scale = args.updates / 100_000_000
    result = session.run(paper_stream(scale=scale, nbatches=args.batches, seed=args.seed))

    if args.json:
        print(json.dumps(result.as_row(), indent=2))
    else:
        print(f"system:              {result.system}")
        print(f"total updates:       {result.total_updates:,}")
        print(f"elapsed seconds:     {result.elapsed_seconds:.3f}")
        print(f"updates per second:  {result.updates_per_second:,.0f}")
        if result.metadata:
            print(f"cascades per layer:  {result.metadata.get('cascades')}")
            print(f"fast-memory share:   {result.metadata.get('fast_memory_fraction', 0):.3f}")
    return 0


# --------------------------------------------------------------------------- #
# repro-scaling
# --------------------------------------------------------------------------- #


def main_scaling(argv: Optional[Sequence[str]] = None) -> int:
    """Run the local parallel engine and the SuperCloud projection."""
    parser = argparse.ArgumentParser(
        prog="repro-scaling",
        description="Run N independent ingest workers, sum their rates, and project "
        "the aggregate to the paper's 1,100-node configuration.",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--updates-per-worker", type=int, default=500_000)
    parser.add_argument("--batch-size", type=int, default=50_000)
    parser.add_argument(
        "--cuts", type=_parse_cuts, default=[2 ** 17, 2 ** 20, 2 ** 23]
    )
    parser.add_argument("--sequential", action="store_true", help="run workers in-process")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    engine = ParallelIngestEngine(
        args.workers, cuts=args.cuts, use_processes=not args.sequential
    )
    result = engine.run(args.updates_per_worker, args.batch_size)
    model = SuperCloudModel(ClusterConfig.paper_configuration())
    projection = model.headline_projection(result.mean_worker_rate)

    if args.json:
        payload = {
            "workers": result.nworkers,
            "total_updates": result.total_updates,
            "wall_seconds": result.wall_seconds,
            "aggregate_rate_sum": result.aggregate_rate_sum,
            "aggregate_rate_wall": result.aggregate_rate_wall,
            "mean_worker_rate": result.mean_worker_rate,
            "headline_projection": projection,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"workers:                    {result.nworkers}")
        print(f"total updates:              {result.total_updates:,}")
        print(f"wall seconds:               {result.wall_seconds:.3f}")
        print(f"aggregate rate (sum):       {result.aggregate_rate_sum:,.0f} updates/s")
        print(f"aggregate rate (wall):      {result.aggregate_rate_wall:,.0f} updates/s")
        print(f"mean per-worker rate:       {result.mean_worker_rate:,.0f} updates/s")
        print("--- SuperCloud projection (1,100 nodes x 28 instances) ---")
        print(f"projected aggregate rate:   {projection['aggregate_rate']:,.0f} updates/s")
        print(f"paper headline rate:        {PAPER_HEADLINE_RATE:,} updates/s")
        print(f"ratio to paper:             {projection['ratio_to_paper']:.2f}x")
    return 0


# --------------------------------------------------------------------------- #
# repro-fig2
# --------------------------------------------------------------------------- #


def main_fig2(argv: Optional[Sequence[str]] = None) -> int:
    """Print the Figure 2 table (rate versus number of servers, all systems)."""
    parser = argparse.ArgumentParser(
        prog="repro-fig2",
        description="Measure per-instance rates for hierarchical GraphBLAS and "
        "hierarchical D4M, extrapolate them with the SuperCloud model, and print "
        "them next to the published Figure 2 reference curves.",
    )
    parser.add_argument("--updates", type=int, default=300_000, help="updates per measured system")
    parser.add_argument("--d4m-updates", type=int, default=30_000, help="updates for the D4M measurement")
    parser.add_argument("--cuts", type=_parse_cuts, default=[2 ** 17, 2 ** 20, 2 ** 23])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    hier = HierarchicalMatrix(2 ** 32, 2 ** 32, "fp64", cuts=args.cuts)
    hier_result = IngestSession(hier, "hier-graphblas").run(
        paper_stream(scale=args.updates / 100_000_000, nbatches=100, seed=args.seed)
    )
    d4m = HierarchicalD4MIngestor(cuts=[1000, 10_000, 100_000])
    d4m_result = IngestSession(d4m, "hier-d4m").run(
        paper_stream(scale=args.d4m_updates / 100_000_000, nbatches=20, seed=args.seed)
    )
    rows = build_figure2_table(
        {
            "Hierarchical GraphBLAS (measured)": hier_result.updates_per_second,
            "Hierarchical D4M (measured)": d4m_result.updates_per_second,
        }
    )
    print(format_table(rows))
    return 0


# --------------------------------------------------------------------------- #
# repro-shard
# --------------------------------------------------------------------------- #


def main_shard(argv: Optional[Sequence[str]] = None) -> int:
    """Shard one external stream across K worker shards and report rates."""
    parser = argparse.ArgumentParser(
        prog="repro-shard",
        description="Route an externally supplied stream (power-law edges, synthetic "
        "packet traffic, or a replayed triple file) across K hierarchical shards, "
        "then merge and sanity-check the global matrix.",
    )
    parser.add_argument("--shards", type=int, default=2, help="number of shards K")
    parser.add_argument(
        "--partition", choices=["hash", "range"], default="hash",
        help="coordinate partitioning strategy",
    )
    parser.add_argument(
        "--source", choices=["powerlaw", "traffic"], default="powerlaw",
        help="synthetic stream to shard (ignored with --replay)",
    )
    parser.add_argument(
        "--replay", metavar="FILE", default=None,
        help="replay a row<TAB>col<TAB>value triple file as the stream",
    )
    parser.add_argument("--updates", type=int, default=100_000, help="total element updates")
    parser.add_argument("--batch-size", type=int, default=10_000, help="updates per stream batch")
    parser.add_argument(
        "--cuts", type=_parse_cuts, default=[2 ** 17, 2 ** 20, 2 ** 23]
    )
    parser.add_argument(
        "--processes", action="store_true",
        help="back shards with long-lived worker processes (default: in-process)",
    )
    parser.add_argument(
        "--transport", choices=["queue", "shm", "socket"], default="queue",
        help="worker wire with --processes: pickled FIFO queues (default), "
        "shared-memory ring buffers carrying packed uint64 batches (zero "
        "pickling; falls back to queue for non-packable IPv6 shapes), or "
        "TCP connections to repro-node agents (requires --nodes)",
    )
    parser.add_argument(
        "--nodes", metavar="HOST:PORT,...", default=None,
        help="comma-separated repro-node agent endpoints for "
        "--transport socket (implies --processes)",
    )
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="replica workers per shard: ingest is mirrored so a dead "
        "primary (or node) fails over with zero lost updates",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the incrementally maintained traffic statistics (degree "
        "summary + top supernodes) served without materialising the shards",
    )
    parser.add_argument(
        "--rebalance", choices=["auto", "manual"], default=None,
        help="migrate slabs between live shards mid-stream: 'auto' checks the "
        "per-shard nnz imbalance periodically and moves a slab from the most "
        "to the least loaded shard whenever it exceeds --imbalance-threshold; "
        "'manual' forces exactly one migration at the stream midpoint. "
        "Ingest never stops; the partition-map epoch fences in-flight batches.",
    )
    parser.add_argument(
        "--imbalance-threshold", type=float, default=1.5,
        help="max/mean per-shard nnz ratio tolerated before an auto "
        "rebalance fires (default 1.5; 1.0 is perfectly even)",
    )
    parser.add_argument(
        "--auto-rejoin", action="store_true",
        help="run the hands-off AutoRejoiner supervisor alongside ingest: "
        "replica slots retired by a failover are re-dialed with back-off and "
        "resynced from a primary checkpoint without stopping the stream "
        "(requires --replicas > 0)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.auto_rejoin and args.replicas <= 0:
        parser.error("--auto-rejoin requires --replicas > 0")

    if args.replay is not None:
        from .graphblas.io import read_triples_arrays

        rows, cols, vals = read_triples_arrays(args.replay)
        stream = batched(rows, cols, vals, batch_size=args.batch_size)
        # Replay ignores --updates; cadence math below must use the real
        # stream length or a short capture would never hit its midpoint.
        stream_updates = int(np.asarray(rows).size)
    elif args.source == "traffic":
        nwindows = max(-(-args.updates // args.batch_size), 1)
        stream = _exact_stream(
            synthetic_packets(args.batch_size, nwindows, seed=args.seed),
            args.updates,
        )
        stream_updates = args.updates
    else:
        nbatches = max(-(-args.updates // args.batch_size), 1)
        stream = _exact_stream(
            paper_stream(
                total_entries=nbatches * args.batch_size,
                nbatches=nbatches,
                seed=args.seed,
            ),
            args.updates,
        )
        stream_updates = args.updates

    nodes = None
    if args.nodes is not None:
        nodes = [part.strip() for part in args.nodes.split(",") if part.strip()]
        if args.transport != "socket":
            parser.error("--nodes requires --transport socket")
    if args.transport == "socket" and nodes is None:
        parser.error("--transport socket requires --nodes host:port,...")
    matrix = ShardedHierarchicalMatrix(
        args.shards,
        2 ** 32,
        2 ** 32,
        cuts=args.cuts,
        partition=args.partition,
        use_processes=args.processes or nodes is not None,
        transport=args.transport,
        nodes=nodes,
        replicas=args.replicas,
    )
    transport_in_force = matrix.transport
    expected_batches = max(-(-stream_updates // args.batch_size), 1)
    rebalance_events = []
    rejoiner = None
    with matrix:
        wall_start = time.perf_counter()
        check_every = max(expected_batches // 4, 1)
        if args.auto_rejoin:
            # Same stream-relative clock trick as the rebalancer below: the
            # supervisor's back-off schedule advances in batch units, so a
            # still-down agent is retried every check_every batches, doubling
            # up to its cap, instead of wall-clock polling.
            from .service import AutoRejoiner

            rejoiner = AutoRejoiner(
                matrix, interval=float(check_every), clock=lambda: 0.0
            )
        if args.rebalance is None and rejoiner is None:
            total = matrix.ingest(stream)
        else:
            # Interleave live migrations with the stream: ingest continues on
            # every other shard while a slab moves, and batches routed before
            # a migration are fenced by the transport barrier ordering.
            rebalancer = None
            if args.rebalance == "auto":
                # The policy (trigger/settle hysteresis, cool-down after a
                # migration, fruitless-check back-off) lives in the service
                # layer's AutoRebalancer; this loop just advances its clock
                # in batch units so the cadence stays stream-relative.
                from .service import AutoRebalancer

                rebalancer = AutoRebalancer(
                    matrix,
                    trigger=args.imbalance_threshold,
                    interval=float(check_every),
                    cooldown=float(check_every),
                    clock=lambda: 0.0,
                )
            count = 0
            for batch in stream:
                rows, cols, values = normalize_batch(batch)
                matrix.update(rows, cols, values)
                count += 1
                if rebalancer is not None:
                    rebalance_events.extend(rebalancer.maybe_step(now=float(count)))
                elif args.rebalance == "manual" and count == max(
                    expected_batches // 2, 1
                ):
                    report = matrix.rebalance()
                    if report is not None:
                        rebalance_events.append(report)
                if rejoiner is not None:
                    rejoiner.maybe_step(now=float(count))
            total = matrix.total_updates
        matrix.finalize()
        wall = time.perf_counter() - wall_start
        imbalance_final = matrix.imbalance() if args.rebalance else None
        map_epoch = matrix.map_epoch
        reports = matrix.reports()
        stats = None
        supernodes = None
        if args.stats:
            from .analytics import degree_summary, supernode_report

            # Served from the shards' incremental reduction vectors — no
            # materialize, and the shards keep streaming undisturbed.
            stats = degree_summary(matrix)
            supernodes = supernode_report(matrix, 5)
        nvals = matrix.materialize().nvals
    rate_sum = sum(r.updates_per_second for r in reports)
    rate_wall = total / wall if wall > 0 else 0.0

    if args.json:
        payload = {
            "shards": args.shards,
            "partition": args.partition,
            "transport": transport_in_force,
            "source": "replay" if args.replay else args.source,
            "total_updates": total,
            "wall_seconds": wall,
            "aggregate_rate_sum": rate_sum,
            "aggregate_rate_wall": rate_wall,
            "global_nvals": nvals,
            "per_shard": [
                {
                    "shard": r.worker_id,
                    "updates": r.total_updates,
                    "seconds": r.elapsed_seconds,
                    "updates_per_second": r.updates_per_second,
                    "nvals": r.final_nvals,
                }
                for r in reports
            ],
        }
        if stats is not None:
            payload["stats"] = stats
            payload["supernodes"] = supernodes
        if args.rebalance is not None:
            payload["rebalance"] = {
                "mode": args.rebalance,
                "map_epoch": map_epoch,
                "imbalance_final": imbalance_final,
                "events": [
                    {
                        "epoch": r.epoch,
                        "source": r.source,
                        "dest": r.dest,
                        "moved": r.moved,
                        "slab_lo": r.slab[0],
                        "slab_hi": r.slab[1],
                        "imbalance_before": r.imbalance_before,
                    }
                    for r in rebalance_events
                ],
            }
        if rejoiner is not None:
            payload["rejoin"] = {
                "checks": rejoiner.checks,
                "rejoined": len(rejoiner.events),
                "events": rejoiner.events,
            }
        print(json.dumps(payload, indent=2))
    else:
        print(f"shards:                {args.shards} ({args.partition} partition)")
        print(f"transport:             {transport_in_force}")
        print(f"source:                {'replay ' + args.replay if args.replay else args.source}")
        print(f"total updates:         {total:,}")
        print(f"wall seconds:          {wall:.3f}")
        print(f"{'shard':>8} {'updates':>12} {'seconds':>10} {'updates/s':>14}")
        for r in reports:
            print(
                f"{r.worker_id:>8} {r.total_updates:>12,} "
                f"{r.elapsed_seconds:>10.3f} {r.updates_per_second:>14,.0f}"
            )
        print(f"aggregate rate (sum):  {rate_sum:,.0f} updates/s")
        print(f"aggregate rate (wall): {rate_wall:,.0f} updates/s")
        print(f"global nvals:          {nvals:,}")
        if args.rebalance is not None:
            print(
                f"rebalance:             {args.rebalance}, "
                f"{len(rebalance_events)} migration(s), map epoch {map_epoch}, "
                f"final imbalance {imbalance_final:.3f}"
            )
            for r in rebalance_events:
                print(
                    f"  epoch {r.epoch}: shard {r.source} -> {r.dest}, "
                    f"{r.moved:,} entries, imbalance before {r.imbalance_before:.3f}"
                )
        if rejoiner is not None:
            print(
                f"auto-rejoin:           {len(rejoiner.events)} rejoin(s) "
                f"over {rejoiner.checks} check(s)"
            )
            for ev in rejoiner.events:
                print(f"  batch {ev['at']:.0f}: shard {ev['shard']} slot {ev['slot']} resynced")
        if stats is not None:
            print("--- incremental traffic statistics (no materialize) ---")
            print(f"nnz:                   {stats['nnz']:,.0f}")
            print(f"total traffic:         {stats['total_traffic']:,.0f}")
            print(f"active sources:        {stats['active_sources']:,.0f}")
            print(f"active destinations:   {stats['active_destinations']:,.0f}")
            print(f"max out/in degree:     {stats['max_out_degree']:,.0f} / "
                  f"{stats['max_in_degree']:,.0f}")
            print(f"top source share:      {supernodes['top_source_share']:.3f}")
            print(f"top destination share: {supernodes['top_destination_share']:.3f}")
            print(f"{'source':>12} {'traffic':>12} {'fan-out':>8}")
            for ident, traffic, fan in supernodes["top_sources"]:
                print(f"{ident:>12} {traffic:>12,.0f} {fan:>8}")
    return 0


# --------------------------------------------------------------------------- #
# repro-node
# --------------------------------------------------------------------------- #


def main_node(argv: Optional[Sequence[str]] = None) -> int:
    """Host shard workers behind a listening endpoint (the agent half of
    multi-node serving)."""
    parser = argparse.ArgumentParser(
        prog="repro-node",
        description="Listen for shard-worker connections from a repro-shard "
        "router (--transport socket).  Each accepted connection forks one "
        "worker process owning a private hierarchical matrix; the agent "
        "serves until interrupted.",
    )
    parser.add_argument("--host", default="0.0.0.0", help="bind address (default all interfaces)")
    parser.add_argument(
        "--port", type=int, default=0,
        help="listening port (default 0: pick a free port and print it)",
    )
    args = parser.parse_args(argv)

    from .distributed.node import NodeAgent, format_address

    agent = NodeAgent(host=args.host, port=args.port)
    # The connect string routers pass via --nodes; printed first and flushed
    # so wrappers that spawn agents can scrape the chosen port.
    print(f"listening on {format_address(agent.address)}", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        agent.close()
    return 0


# --------------------------------------------------------------------------- #
# repro-gateway
# --------------------------------------------------------------------------- #


def main_gateway(argv: Optional[Sequence[str]] = None) -> int:
    """Serve, feed, or query the asyncio ingest gateway."""
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description="Async ingestion gateway over a sharded hierarchical matrix: "
        "'serve' hosts one, 'send' streams a synthetic workload into it as a "
        "client, 'stats' queries its snapshot statistics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="host a gateway over a sharded matrix")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (default 0: pick a free port and print it)",
    )
    serve.add_argument("--shards", type=int, default=2, help="number of shards K")
    serve.add_argument("--partition", choices=["hash", "range"], default="hash")
    serve.add_argument("--cuts", type=_parse_cuts, default=[2 ** 17, 2 ** 20, 2 ** 23])
    serve.add_argument(
        "--processes", action="store_true",
        help="back shards with long-lived worker processes",
    )
    serve.add_argument(
        "--transport", choices=["queue", "shm", "socket"], default="queue",
        help="worker wire with --processes (see repro-shard --help)",
    )
    serve.add_argument(
        "--nodes", metavar="HOST:PORT,...", default=None,
        help="repro-node agent endpoints for --transport socket",
    )
    serve.add_argument("--replicas", type=int, default=0, help="replica workers per shard")
    serve.add_argument(
        "--coalesce", type=int, default=8192,
        help="updates per coalesced router batch (default 8192)",
    )
    serve.add_argument(
        "--auto-rebalance", action="store_true",
        help="run the hands-off AutoRebalancer policy alongside ingest",
    )
    serve.add_argument(
        "--imbalance-threshold", type=float, default=1.5,
        help="auto-rebalance trigger: max/mean per-shard nnz ratio (default 1.5)",
    )
    serve.add_argument(
        "--auto-rejoin", action="store_true",
        help="run the hands-off AutoRejoiner supervisor alongside ingest: "
        "replica slots retired by a failover are re-dialed with back-off and "
        "resynced without stopping the gateway (requires --replicas > 0)",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then exit (default: until interrupted)",
    )

    send = sub.add_parser("send", help="stream a synthetic workload into a gateway")
    send.add_argument("address", help="gateway HOST:PORT")
    send.add_argument("--updates", type=int, default=100_000, help="total element updates")
    send.add_argument("--batch-size", type=int, default=1_000, help="updates per client batch")
    send.add_argument(
        "--source", choices=["powerlaw", "traffic"], default="powerlaw",
        help="synthetic stream to send",
    )
    send.add_argument("--seed", type=int, default=0)
    send.add_argument("--json", action="store_true")

    stats = sub.add_parser("stats", help="query a running gateway's statistics")
    stats.add_argument("address", help="gateway HOST:PORT")
    stats.add_argument("--top", type=int, default=5, help="supernodes to list")
    stats.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "serve":
        from .distributed.node import format_address
        from .service import AutoRebalancer, AutoRejoiner, IngestGateway

        nodes = None
        if args.nodes is not None:
            nodes = [part.strip() for part in args.nodes.split(",") if part.strip()]
            if args.transport != "socket":
                serve.error("--nodes requires --transport socket")
        if args.transport == "socket" and nodes is None:
            serve.error("--transport socket requires --nodes host:port,...")
        if args.auto_rejoin and args.replicas <= 0:
            serve.error("--auto-rejoin requires --replicas > 0")
        matrix = ShardedHierarchicalMatrix(
            args.shards,
            2 ** 32,
            2 ** 32,
            cuts=args.cuts,
            partition=args.partition,
            use_processes=args.processes or nodes is not None,
            transport=args.transport,
            nodes=nodes,
            replicas=args.replicas,
        )
        rebalancer = None
        if args.auto_rebalance:
            rebalancer = AutoRebalancer(matrix, trigger=args.imbalance_threshold)
        rejoiner = None
        if args.auto_rejoin:
            rejoiner = AutoRejoiner(matrix)
        gateway = IngestGateway(
            matrix,
            host=args.host,
            port=args.port,
            coalesce_updates=args.coalesce,
            rebalancer=rebalancer,
            rejoiner=rejoiner,
            own_matrix=True,
        )
        gateway.start()
        # The connect string clients pass; printed first and flushed so
        # wrappers that spawn gateways can scrape the chosen port.
        print(f"gateway listening on {format_address(gateway.address)}", flush=True)
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:  # pragma: no cover - interactive serving
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            gateway.close()
        metrics = gateway.metrics()
        print(f"clients served:        {metrics['clients_total']}")
        print(f"updates routed:        {metrics['routed_updates']:,}")
        print(f"batches routed:        {metrics['routed_batches']:,}")
        if rejoiner is not None:
            print(f"replicas rejoined:     {len(rejoiner.events)}")
        return 0

    from .service import GatewayClient

    if args.command == "send":
        if args.source == "traffic":
            nwindows = max(-(-args.updates // args.batch_size), 1)
            stream = _exact_stream(
                synthetic_packets(args.batch_size, nwindows, seed=args.seed),
                args.updates,
            )
        else:
            nbatches = max(-(-args.updates // args.batch_size), 1)
            stream = _exact_stream(
                paper_stream(
                    total_entries=nbatches * args.batch_size,
                    nbatches=nbatches,
                    seed=args.seed,
                ),
                args.updates,
            )
        with GatewayClient(args.address) as client:
            start = time.perf_counter()
            batches = 0
            for rows, cols, values in stream:
                client.update(rows, cols, values)
                batches += 1
            ack = client.sync()
            elapsed = time.perf_counter() - start
        rate = ack["acked"] / elapsed if elapsed > 0 else 0.0
        if args.json:
            print(json.dumps({
                "sent_updates": client.sent_updates,
                "acked_updates": ack["acked"],
                "batches": batches,
                "seconds": elapsed,
                "updates_per_second": rate,
                "epoch": ack["epoch"],
            }, indent=2))
        else:
            print(f"sent updates:          {client.sent_updates:,}")
            print(f"acked updates:         {ack['acked']:,}")
            print(f"batches:               {batches:,}")
            print(f"seconds:               {elapsed:.3f}")
            print(f"rate:                  {rate:,.0f} updates/s")
            print(f"map epoch:             {ack['epoch']}")
        return 0

    with GatewayClient(args.address) as client:
        summary = client.stats()
        supernodes = client.top(args.top)
        events = client.rebalance_events()
        epoch = client.epoch()
    if args.json:
        print(json.dumps({
            "stats": summary,
            "supernodes": supernodes,
            "rebalance_events": events,
            "map_epoch": epoch,
        }, indent=2))
    else:
        print(f"map epoch:             {epoch}")
        print(f"nnz:                   {summary['nnz']:,.0f}")
        print(f"total traffic:         {summary['total_traffic']:,.0f}")
        print(f"active sources:        {summary['active_sources']:,.0f}")
        print(f"active destinations:   {summary['active_destinations']:,.0f}")
        print(f"max out/in degree:     {summary['max_out_degree']:,.0f} / "
              f"{summary['max_in_degree']:,.0f}")
        print(f"{'source':>12} {'traffic':>12} {'fan-out':>8}")
        for ident, traffic, fan in supernodes["top_sources"]:
            print(f"{ident:>12} {traffic:>12,.0f} {fan:>8}")
        print(f"rebalance events:      {len(events)}")
        for ev in events:
            print(
                f"  epoch {ev['epoch']}: shard {ev['source']} -> {ev['dest']}, "
                f"{ev['moved']:,} entries, imbalance before "
                f"{ev['imbalance_before']:.3f}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_ingest())
