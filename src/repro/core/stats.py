"""Instrumentation for hierarchical hypersparse matrices.

The paper's central claim is that the hierarchy "dramatically reduces the
number of updates to slow memory".  :class:`UpdateStats` records exactly the
quantities needed to verify that claim: how many raw element updates arrived,
how many element-writes each layer absorbed, and how many cascades each layer
triggered.  The memory cost model in :mod:`repro.memory` converts these counts
into estimated memory traffic per level of the machine's memory hierarchy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["UpdateStats", "Timer"]


@dataclass
class UpdateStats:
    """Counters accumulated by a :class:`~repro.core.hierarchical.HierarchicalMatrix`.

    Attributes
    ----------
    nlevels:
        Number of layers being tracked.
    total_updates:
        Total number of element updates submitted by the application
        (the denominator of the updates-per-second metric).
    update_calls:
        Number of ``update`` batch calls.
    element_writes:
        Per-layer count of elements written *into* that layer, including
        cascade traffic.  ``element_writes[0]`` counts the raw stream;
        ``element_writes[i]`` for ``i > 0`` counts cascade merges.
    cascades:
        Per-layer count of cascade events (layer ``i`` overflowed into ``i+1``).
    max_layer_nvals:
        Largest number of stored entries ever observed per layer.
    elapsed_seconds:
        Wall-clock time spent inside ``update`` (including cascades).
    """

    nlevels: int
    total_updates: int = 0
    update_calls: int = 0
    element_writes: List[int] = field(default_factory=list)
    cascades: List[int] = field(default_factory=list)
    max_layer_nvals: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.element_writes:
            self.element_writes = [0] * self.nlevels
        if not self.cascades:
            self.cascades = [0] * self.nlevels
        if not self.max_layer_nvals:
            self.max_layer_nvals = [0] * self.nlevels

    # ------------------------------------------------------------------ #

    def record_update(self, nelements: int) -> None:
        """Record a batch of ``nelements`` raw updates arriving at layer 1."""
        self.total_updates += int(nelements)
        self.update_calls += 1
        self.element_writes[0] += int(nelements)

    def record_cascade(self, from_level: int, nelements: int) -> None:
        """Record layer ``from_level`` (0-based) spilling ``nelements`` into the next layer."""
        self.cascades[from_level] += 1
        if from_level + 1 < self.nlevels:
            self.element_writes[from_level + 1] += int(nelements)

    def record_layer_size(self, level: int, nvals: int) -> None:
        """Track the high-water mark of stored entries at ``level``."""
        if nvals > self.max_layer_nvals[level]:
            self.max_layer_nvals[level] = int(nvals)

    # ------------------------------------------------------------------ #

    @property
    def updates_per_second(self) -> float:
        """Measured streaming update rate (0.0 when no time has elapsed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_updates / self.elapsed_seconds

    @property
    def slow_memory_writes(self) -> int:
        """Element writes that reached the last (slow-memory) layer."""
        return int(self.element_writes[-1]) if self.element_writes else 0

    @property
    def fast_memory_fraction(self) -> float:
        """Fraction of all element writes absorbed by layers other than the last."""
        total = sum(self.element_writes)
        if total == 0:
            return 1.0
        return 1.0 - self.element_writes[-1] / total

    def merge(self, other: "UpdateStats") -> "UpdateStats":
        """Combine counters from another instance (e.g. another process)."""
        if other.nlevels != self.nlevels:
            raise ValueError(
                f"cannot merge stats with different level counts "
                f"({self.nlevels} vs {other.nlevels})"
            )
        out = UpdateStats(self.nlevels)
        out.total_updates = self.total_updates + other.total_updates
        out.update_calls = self.update_calls + other.update_calls
        out.element_writes = [a + b for a, b in zip(self.element_writes, other.element_writes)]
        out.cascades = [a + b for a, b in zip(self.cascades, other.cascades)]
        out.max_layer_nvals = [
            max(a, b) for a, b in zip(self.max_layer_nvals, other.max_layer_nvals)
        ]
        out.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        return out

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (used by the CLI and the benchmark reports)."""
        return {
            "nlevels": self.nlevels,
            "total_updates": self.total_updates,
            "update_calls": self.update_calls,
            "element_writes": list(self.element_writes),
            "cascades": list(self.cascades),
            "max_layer_nvals": list(self.max_layer_nvals),
            "elapsed_seconds": self.elapsed_seconds,
            "updates_per_second": self.updates_per_second,
            "slow_memory_writes": self.slow_memory_writes,
            "fast_memory_fraction": self.fast_memory_fraction,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.total_updates = 0
        self.update_calls = 0
        self.element_writes = [0] * self.nlevels
        self.cascades = [0] * self.nlevels
        self.max_layer_nvals = [0] * self.nlevels
        self.elapsed_seconds = 0.0


class Timer:
    """Tiny context manager accumulating wall-clock time into an UpdateStats."""

    def __init__(self, stats: UpdateStats):
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stats.elapsed_seconds += time.perf_counter() - self._start
