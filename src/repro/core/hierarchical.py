"""Hierarchical hypersparse matrices (the paper's primary contribution).

An N-level hierarchical hypersparse matrix maintains GraphBLAS matrices
:math:`A_1 ... A_N` with nonzero-count cuts :math:`c_1 ... c_{N-1}`:

* Streaming updates are added into the smallest matrix: :math:`A_1 = A_1 + A`.
* Whenever :math:`nnz(A_i) > c_i`, layer :math:`A_i` is added into
  :math:`A_{i+1}` and cleared.  The check repeats up the hierarchy until
  :math:`nnz(A_i) \\le c_i` or the unbounded last layer is reached.
* A full query materialises :math:`A = \\sum_{i=1}^{N} A_i`.

Because the layers are combined with the GraphBLAS ``plus`` operation, the
result is *exactly* the matrix obtained by a single flat accumulation — the
hierarchy is purely a performance transformation, which is the linearity
guarantee the paper leans on.  The small layers absorb the overwhelming
majority of element writes, so almost all work happens on arrays small enough
to stay in fast memory.

Deferred layer-1 ingest
-----------------------
By default (``defer_ingest=True``) streaming batches are *appended* to layer
1's pending-tuple buffer in O(n) instead of being eagerly sorted and merged.
The cascade check counts pending tuples via the O(1)
``Matrix.nvals_upper_bound``; only when stored + pending crosses the first
cut :math:`c_1` does layer 1 pay one ``wait()`` (sort + collapse + merge,
amortised over every batch appended since the last flush).  Because raw
pending tuples over-count duplicates, the bound may trigger a flush whose
collapsed ``nvals`` is still under the cut — then no cascade happens and
streaming resumes; cascades themselves still fire on the exact post-collapse
``nnz(A_1) > c_1`` condition, so the cascade pattern (and the final matrix)
is identical to eager ingest.  Queries (``materialize``, ``get``,
``layer_nvals`` ...) force the flush, so readers never observe pending state.

Incremental reductions
----------------------
With ``track_reductions=True`` (the default) every update batch is also
observed by an :class:`~repro.core.reductions.IncrementalReductions` tracker —
O(batch) appends maintaining running out-/in-degree, fan-out/fan-in, total
traffic, and exact ``nnz``, available through :attr:`incremental` *without*
materialising and without forcing the deferred layer-1 flush.  The analytics
layer (:mod:`repro.analytics`) uses it automatically.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graphblas import Matrix, binary
from ..graphblas import _kernels as K
from ..graphblas.binaryop import BinaryOp
from ..graphblas.errors import DimensionMismatch, InvalidValue
from ..graphblas.types import DataType, lookup_dtype
from .policy import CutPolicy, FixedCuts, default_policy
from .reductions import IncrementalReductions
from .stats import UpdateStats

__all__ = ["HierarchicalMatrix"]

MAX_DIM = 2 ** 64


class HierarchicalMatrix:
    """An N-level cascade of hypersparse GraphBLAS matrices.

    Parameters
    ----------
    nrows, ncols:
        Logical dimensions (default the full 2^64 IPv6 address space).
    dtype:
        GraphBLAS value type (default FP64).
    cuts:
        Explicit cut thresholds :math:`c_1 ... c_{N-1}`; mutually exclusive
        with ``policy``.
    policy:
        A :class:`~repro.core.policy.CutPolicy` supplying (and possibly
        adapting) the cuts.  When neither ``cuts`` nor ``policy`` is given the
        library default (4 levels, geometric growth) is used.
    accum:
        Binary operator used both for merging updates into layer 1 and for
        cascading layers (default ``plus``, as in the paper).
    track_stats:
        Maintain an :class:`~repro.core.stats.UpdateStats` instance (small
        constant overhead; enabled by default).
    defer_ingest:
        When True (default) streaming updates append to layer 1's pending
        buffer in O(n) and the sort/merge is deferred until the pending count
        crosses the first cut (see the module docstring).  Deferral requires
        an associative ``accum`` (it regroups batches); non-associative
        accumulators automatically use eager ingest.  Set False to force the
        pre-packed eager behaviour, mainly useful for benchmarking the
        deferred path against it.
    track_reductions:
        When True (default) maintain incremental row/col reduction vectors
        (degrees, fans, total traffic, exact nnz) updated per ingest batch
        and served through :attr:`incremental` without materialising.  The
        tracker deactivates itself for non-``plus`` accumulators, where the
        reductions are not linear in the updates (reads then fall back to the
        materialize path in :mod:`repro.analytics`).

    Examples
    --------
    >>> import numpy as np
    >>> H = HierarchicalMatrix(cuts=[4, 16])
    >>> H.update([1, 2, 3], [4, 5, 6], [1.0, 1.0, 1.0])
    >>> H.update([1, 9, 9], [4, 9, 9], [2.0, 1.0, 1.0])
    >>> H.materialize()[1, 4]
    3.0
    """

    def __init__(
        self,
        nrows: int = MAX_DIM,
        ncols: int = MAX_DIM,
        dtype="fp64",
        *,
        cuts: Optional[Sequence[int]] = None,
        policy: Optional[CutPolicy] = None,
        accum: Optional[BinaryOp] = None,
        track_stats: bool = True,
        defer_ingest: bool = True,
        track_reductions: bool = True,
        name: str = "",
    ):
        if cuts is not None and policy is not None:
            raise InvalidValue("pass either cuts= or policy=, not both")
        if policy is None:
            policy = FixedCuts(cuts) if cuts is not None else default_policy()
        self._policy = policy
        self._cuts: List[int] = list(policy.initial_cuts())
        if not self._cuts:
            raise InvalidValue("a hierarchy needs at least one cut (two levels)")
        self._nlevels = len(self._cuts) + 1
        self._dtype: DataType = lookup_dtype(dtype)
        self._nrows = int(nrows)
        self._ncols = int(ncols)
        self._accum = accum if accum is not None else binary.plus
        # Deferred ingest regroups the pending batches (collapse first, then
        # one merge), which only equals batch-by-batch eager merging for
        # associative accumulators; non-associative ones (minus, div ...)
        # silently fall back to eager ingest.
        self._defer_ingest = bool(defer_ingest) and self._accum.associative
        self._layers: List[Matrix] = [
            Matrix(self._dtype, self._nrows, self._ncols, name=f"{name}A{i + 1}")
            for i in range(self._nlevels)
        ]
        self._stats = UpdateStats(self._nlevels) if track_stats else None
        self._incremental = IncrementalReductions(
            self._nrows,
            self._ncols,
            self._dtype,
            self._accum,
            enabled=track_reductions,
        )
        # Per-layer count of total updates at the time of that layer's last
        # cascade; used to feed adaptive policies.
        self._last_cascade_at = [0] * self._nlevels
        # Deferred ingest appends each batch to the layer-1 pending buffer
        # and the tracker backlog in lockstep, so the layer-1 flush's sorted,
        # collapsed output can serve the tracker's drain for free (the hook
        # declines and falls back to its own sort on any misalignment).
        if self._defer_ingest and self._incremental.supported:
            self._layers[0].flush_hook = self._incremental.absorb_flush
        self.name = name

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def nrows(self) -> int:
        """Number of rows of the logical matrix."""
        return self._nrows

    @property
    def ncols(self) -> int:
        """Number of columns of the logical matrix."""
        return self._ncols

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self._nrows, self._ncols)

    @property
    def dtype(self) -> DataType:
        """Value type of every layer."""
        return self._dtype

    @property
    def nlevels(self) -> int:
        """Number of layers ``N``."""
        return self._nlevels

    @property
    def cuts(self) -> Tuple[int, ...]:
        """Current cut thresholds :math:`c_1 ... c_{N-1}`."""
        return tuple(self._cuts)

    @property
    def layers(self) -> Tuple[Matrix, ...]:
        """The layer matrices :math:`A_1 ... A_N` (do not mutate directly)."""
        return tuple(self._layers)

    @property
    def layer_nvals(self) -> Tuple[int, ...]:
        """Stored entries per layer."""
        return tuple(layer.nvals for layer in self._layers)

    @property
    def nvals_stored(self) -> int:
        """Total stored entries summed over layers.

        This counts coordinates stored in more than one layer multiple times;
        the exact logical ``nvals`` requires :meth:`materialize`.
        """
        return sum(layer.nvals for layer in self._layers)

    @property
    def nvals(self) -> int:
        """Exact number of logical entries (materialises the sum of layers)."""
        return self.materialize().nvals

    @property
    def stats(self) -> Optional[UpdateStats]:
        """Update instrumentation, or None when ``track_stats=False``."""
        return self._stats

    @property
    def policy(self) -> CutPolicy:
        """The cut policy in force."""
        return self._policy

    @property
    def accum(self) -> BinaryOp:
        """The accumulator combining duplicate coordinates (default ``plus``)."""
        return self._accum

    @property
    def incremental(self) -> IncrementalReductions:
        """Incremental reduction vectors maintained during ingest.

        Check :attr:`IncrementalReductions.supported` (and
        :attr:`~IncrementalReductions.fan_supported` for fan/nnz) before
        querying; the analytics layer does this automatically and falls back
        to :meth:`materialize`-based reductions when unavailable.
        """
        return self._incremental

    @property
    def memory_usage(self) -> int:
        """Approximate resident bytes of coordinate/value storage across all layers."""
        return sum(layer.memory_usage for layer in self._layers)

    @property
    def memory_breakdown(self) -> dict:
        """Per-role byte totals summed over layers (stored vs pending used/capacity).

        Same keys as :attr:`Matrix.memory_breakdown
        <repro.graphblas.matrix.Matrix.memory_breakdown>`; placement
        decisions should follow ``pending_capacity_bytes`` (resident) while
        traffic estimates follow ``pending_used_bytes`` (live data).
        """
        total = {"stored_bytes": 0, "pending_used_bytes": 0, "pending_capacity_bytes": 0}
        for layer in self._layers:
            for key, nbytes in layer.memory_breakdown.items():
                total[key] += nbytes
        return total

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def update(self, rows, cols, values=1) -> "HierarchicalMatrix":
        """Add a batch of triples to the hierarchy (``A_1 = A_1 + A``), then cascade.

        Parameters
        ----------
        rows, cols:
            Coordinates of the batch; arrays, sequences, or bare scalars/0-d
            arrays (``H.update(5, 6)`` adds one element, like
            ``Matrix.build``).
        values:
            Per-coordinate values, or a scalar broadcast over the whole batch
            (the traffic-matrix use case adds 1 per observed packet; this is
            the default).

        Returns ``self`` for chaining.  The batch is also observed by the
        :attr:`incremental` reduction tracker (O(batch) appends) when that is
        enabled.
        """
        start = time.perf_counter()
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        n = int(r.size)
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            v = np.full(n, values, dtype=self._dtype.np_type)
        else:
            v = np.asarray(values).astype(self._dtype.np_type, copy=False)
        # No defensive copies: both the layer-1 pending buffer and the
        # tracker backlog are preallocated arenas that copy at append time,
        # so caller-owned arrays are safe to reuse immediately.
        track = self._incremental.supported
        self._layers[0].build(
            r, c, v, dup_op=self._accum, lazy=self._defer_ingest, copy=False
        )
        if self._stats is not None:
            self._stats.record_update(n)
            self._stats.record_layer_size(0, self._layers[0].nvals_upper_bound)
        if track:
            self._incremental.observe(r, c, v, copy=False)
        self._cascade()
        if self._stats is not None:
            self._stats.elapsed_seconds += time.perf_counter() - start
        return self

    def update_matrix(self, other: Matrix) -> "HierarchicalMatrix":
        """Add an already-built hypersparse matrix into the hierarchy."""
        if other.shape != self.shape:
            raise DimensionMismatch(
                f"update_matrix requires shape {self.shape}, got {other.shape}"
            )
        start = time.perf_counter()
        n = other.nvals
        if self._defer_ingest:
            # extract_tuples already returns fresh copies; hand them straight
            # to the pending buffer instead of copying a second time.  The
            # incremental tracker shares the same arrays (pending buffers
            # never mutate them).
            r, c, v = other.extract_tuples()
            self._layers[0].build(r, c, v, dup_op=self._accum, lazy=True, copy=False)
            self._incremental.observe_matrix(r, c, v)
        else:
            self._layers[0].update(other, accum=self._accum)
            if self._incremental.supported:
                self._incremental.observe_matrix(*other.extract_tuples())
        if self._stats is not None:
            self._stats.record_update(n)
            self._stats.record_layer_size(0, self._layers[0].nvals_upper_bound)
        self._cascade()
        if self._stats is not None:
            self._stats.elapsed_seconds += time.perf_counter() - start
        return self

    def insert(self, row: int, col: int, value=1) -> "HierarchicalMatrix":
        """Add a single element (convenience wrapper around :meth:`update`)."""
        return self.update([row], [col], [value])

    def __iadd__(self, other) -> "HierarchicalMatrix":
        if isinstance(other, Matrix):
            return self.update_matrix(other)
        if isinstance(other, tuple) and len(other) in (2, 3):
            return self.update(*other)
        raise TypeError(
            "HierarchicalMatrix += expects a Matrix or a (rows, cols[, values]) tuple"
        )

    def _cascade(self) -> None:
        """Propagate overflowing layers upward (Fig. 1 of the paper).

        Layer ``i`` is merged into layer ``i+1`` and cleared whenever its
        stored-entry count exceeds ``c_i``; the scan repeats on the next layer
        so a single large update can ripple through several levels.

        The first check per layer uses the O(1) ``nvals_upper_bound`` (stored
        + pending tuples) so the streaming hot path never forces a pending
        merge; only when the bound crosses the cut is the layer flushed and
        the exact post-collapse ``nvals`` consulted.
        """
        total_updates = self._stats.total_updates if self._stats is not None else 0
        for i in range(self._nlevels - 1):
            bound = self._layers[i].nvals_upper_bound
            if bound <= self._cuts[i]:
                if self._stats is not None:
                    self._stats.record_layer_size(i, bound)
                break
            nvals_i = self._layers[i].nvals  # forces the deferred merge
            if self._stats is not None:
                self._stats.record_layer_size(i, nvals_i)
            if nvals_i <= self._cuts[i]:
                # Duplicate collapse brought the layer back under the cut.
                break
            self._layers[i + 1].update(self._layers[i], accum=self._accum)
            self._layers[i].clear()
            if self._stats is not None:
                self._stats.record_cascade(i, nvals_i)
                self._stats.record_layer_size(i + 1, self._layers[i + 1].nvals)
            updates_since = total_updates - self._last_cascade_at[i]
            self._last_cascade_at[i] = total_updates
            new_cuts = self._policy.on_cascade(
                i, nvals_i, list(self._cuts), updates_since_last=updates_since
            )
            if list(new_cuts) != self._cuts:
                self._set_cuts(new_cuts)

    def _set_cuts(self, cuts: Sequence[int]) -> None:
        cuts = [int(c) for c in cuts]
        if len(cuts) != self._nlevels - 1:
            raise InvalidValue(
                f"expected {self._nlevels - 1} cuts, got {len(cuts)}"
            )
        if any(c <= 0 for c in cuts) or any(b < a for a, b in zip(cuts, cuts[1:])):
            raise InvalidValue(f"cuts must be positive and non-decreasing, got {cuts}")
        self._cuts = cuts

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def materialize(self) -> Matrix:
        """Sum all layers into a single hypersparse matrix (:math:`A = \\sum_i A_i`).

        The layers themselves are left untouched, so streaming can continue.
        """
        out = Matrix(self._dtype, self._nrows, self._ncols, name=f"{self.name}sum")
        for layer in self._layers:
            if layer.nvals:
                out.update(layer, accum=self._accum)
        return out

    def wait(self) -> "HierarchicalMatrix":
        """Force layer 1's deferred pending merge (and any resulting cascade).

        Streaming may continue afterwards, and the :attr:`incremental`
        reduction tracker is unaffected (it drains on its own schedule).
        Measurement harnesses call this at the end of the timed loop so the
        reported ingest rate includes the sort/merge work that deferred ingest
        postponed; it is a no-op under eager ingest.  Returns ``self`` for
        chaining.
        """
        if self._layers[0].has_pending:
            self._layers[0].wait()
            self._cascade()
        return self

    def flush(self) -> Matrix:
        """Collapse every layer into the last one and return it.

        After ``flush`` the lower layers are empty and the top layer holds the
        complete matrix; streaming may continue afterwards.
        """
        top = self._layers[-1]
        for layer in self._layers[:-1]:
            if layer.nvals:
                top.update(layer, accum=self._accum)
                if self._stats is not None:
                    self._stats.element_writes[-1] += layer.nvals
                layer.clear()
        return top

    def get(self, row: int, col: int, default=None):
        """Read one logical element (sums contributions from every layer)."""
        found = False
        acc = None
        for layer in self._layers:
            v = layer.extractElement(row, col)
            if v is None:
                continue
            if not found:
                acc = v
                found = True
            else:
                acc = self._accum(np.asarray(acc), np.asarray(v)).item()
        return acc if found else default

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            return self.get(int(key[0]), int(key[1]))
        raise TypeError("HierarchicalMatrix indexing requires a (row, col) pair")

    def __contains__(self, key) -> bool:
        return self.get(int(key[0]), int(key[1])) is not None

    def reset_from_triples(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> "HierarchicalMatrix":
        """Replace the logical content with an already-combined COO set.

        The triples must be duplicate-free with values already combined the
        way :meth:`materialize` would have combined them — the shape of data
        produced by materialising and filtering this (or a peer) hierarchy,
        which is exactly what shard slab migration and checkpoint restore
        hand back.  The set is installed into the unbounded top layer (no
        cascades fire), the lower layers start empty, and the
        :attr:`incremental` tracker is rebuilt from the same triples, so the
        logical matrix and its tracked reductions stay mutually exact.
        Streaming may continue afterwards.
        """
        for layer in self._layers:
            layer.clear()
        if rows.size:
            self._layers[-1].build(rows, cols, vals, dup_op=self._accum)
        self._incremental.rebuild_from_triples(rows, cols, vals)
        return self

    def clear(self) -> "HierarchicalMatrix":
        """Empty every layer (cuts and statistics structure are retained)."""
        for layer in self._layers:
            layer.clear()
        if self._stats is not None:
            self._stats.reset()
        self._incremental.reset()
        self._last_cascade_at = [0] * self._nlevels
        return self

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract the logical matrix as coordinate triples."""
        return self.materialize().extract_tuples()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        sizes = ", ".join(str(n) for n in self.layer_nvals)
        return (
            f"<HierarchicalMatrix{label} {self._nrows}x{self._ncols} "
            f"{self._dtype.name}, levels={self._nlevels}, cuts={self._cuts}, "
            f"layer_nvals=[{sizes}]>"
        )
