"""Hierarchical D4M associative arrays.

The paper's closest prior system ("Hierarchical D4M", Reuther et al. 2018 /
Kepner et al. 2019) applies the same N-level cascade to D4M associative arrays:
updates land in a small Assoc, and when its triple count exceeds the cut it is
added into the next, larger Assoc and cleared.  We implement it both as a
baseline for Figure 2 and because the cascade-over-addition pattern is the
common abstraction of the paper series.

The extra cost relative to hierarchical GraphBLAS is the string key-table
union performed on every Assoc addition — exactly the overhead the paper's
integer-indexed hypersparse matrices eliminate.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..d4m import Assoc
from .policy import CutPolicy, FixedCuts, default_policy
from .stats import UpdateStats

__all__ = ["HierarchicalAssoc"]


class HierarchicalAssoc:
    """An N-level cascade of D4M associative arrays.

    Parameters
    ----------
    cuts:
        Explicit cut thresholds; mutually exclusive with ``policy``.
    policy:
        A :class:`~repro.core.policy.CutPolicy` (default: the library default
        geometric policy, same as :class:`HierarchicalMatrix`).
    track_stats:
        Maintain an :class:`UpdateStats` instance.

    Examples
    --------
    >>> H = HierarchicalAssoc(cuts=[2, 8])
    >>> H.update(["a", "b"], ["x", "y"], [1.0, 1.0])
    >>> H.update(["a"], ["x"], [2.0])
    >>> H.materialize()["a", "x"]
    3.0
    """

    def __init__(
        self,
        *,
        cuts: Optional[Sequence[int]] = None,
        policy: Optional[CutPolicy] = None,
        track_stats: bool = True,
    ):
        if cuts is not None and policy is not None:
            raise ValueError("pass either cuts= or policy=, not both")
        if policy is None:
            policy = FixedCuts(cuts) if cuts is not None else default_policy()
        self._policy = policy
        self._cuts: List[int] = list(policy.initial_cuts())
        self._nlevels = len(self._cuts) + 1
        self._layers: List[Assoc] = [Assoc.empty() for _ in range(self._nlevels)]
        self._stats = UpdateStats(self._nlevels) if track_stats else None
        self._last_cascade_at = [0] * self._nlevels

    # ------------------------------------------------------------------ #

    @property
    def nlevels(self) -> int:
        """Number of layers."""
        return self._nlevels

    @property
    def cuts(self) -> Tuple[int, ...]:
        """Current cut thresholds."""
        return tuple(self._cuts)

    @property
    def layers(self) -> Tuple[Assoc, ...]:
        """The layer associative arrays (do not mutate directly)."""
        return tuple(self._layers)

    @property
    def layer_nnz(self) -> Tuple[int, ...]:
        """Stored triples per layer."""
        return tuple(layer.nnz for layer in self._layers)

    @property
    def stats(self) -> Optional[UpdateStats]:
        """Update instrumentation, or None when disabled."""
        return self._stats

    # ------------------------------------------------------------------ #

    def update(self, row_keys, col_keys, values=1.0) -> "HierarchicalAssoc":
        """Add a batch of string-keyed triples and cascade as needed."""
        start = time.perf_counter()
        batch = Assoc(row_keys, col_keys, values)
        n = batch.nnz
        self._layers[0] = self._layers[0] + batch if self._layers[0].nnz else batch
        if self._stats is not None:
            self._stats.record_update(n)
            self._stats.record_layer_size(0, self._layers[0].nnz)
        self._cascade()
        if self._stats is not None:
            self._stats.elapsed_seconds += time.perf_counter() - start
        return self

    def update_assoc(self, batch: Assoc) -> "HierarchicalAssoc":
        """Add an already-built associative array into the hierarchy."""
        start = time.perf_counter()
        n = batch.nnz
        self._layers[0] = self._layers[0] + batch if self._layers[0].nnz else batch
        if self._stats is not None:
            self._stats.record_update(n)
            self._stats.record_layer_size(0, self._layers[0].nnz)
        self._cascade()
        if self._stats is not None:
            self._stats.elapsed_seconds += time.perf_counter() - start
        return self

    def _cascade(self) -> None:
        total_updates = self._stats.total_updates if self._stats is not None else 0
        for i in range(self._nlevels - 1):
            nnz_i = self._layers[i].nnz
            if self._stats is not None:
                self._stats.record_layer_size(i, nnz_i)
            if nnz_i <= self._cuts[i]:
                break
            if self._layers[i + 1].nnz:
                self._layers[i + 1] = self._layers[i + 1] + self._layers[i]
            else:
                self._layers[i + 1] = self._layers[i]
            self._layers[i] = Assoc.empty()
            if self._stats is not None:
                self._stats.record_cascade(i, nnz_i)
                self._stats.record_layer_size(i + 1, self._layers[i + 1].nnz)
            updates_since = total_updates - self._last_cascade_at[i]
            self._last_cascade_at[i] = total_updates
            new_cuts = self._policy.on_cascade(
                i, nnz_i, list(self._cuts), updates_since_last=updates_since
            )
            if list(new_cuts) != self._cuts:
                self._cuts = [int(c) for c in new_cuts]

    # ------------------------------------------------------------------ #

    def materialize(self) -> Assoc:
        """Sum all layers into a single associative array."""
        out = Assoc.empty()
        for layer in self._layers:
            if layer.nnz:
                out = out + layer if out.nnz else layer
        return out

    def flush(self) -> Assoc:
        """Collapse every layer into the last one and return it."""
        top = self._layers[-1]
        for i in range(self._nlevels - 1):
            if self._layers[i].nnz:
                top = top + self._layers[i] if top.nnz else self._layers[i]
                if self._stats is not None:
                    self._stats.element_writes[-1] += self._layers[i].nnz
                self._layers[i] = Assoc.empty()
        self._layers[-1] = top
        return top

    def get(self, row_key, col_key, default=None):
        """Read one logical value (summing contributions from every layer)."""
        found = False
        acc = 0.0
        for layer in self._layers:
            v = layer.getval(row_key, col_key)
            if v is not None:
                acc += v
                found = True
        return acc if found else default

    def clear(self) -> "HierarchicalAssoc":
        """Empty every layer."""
        self._layers = [Assoc.empty() for _ in range(self._nlevels)]
        if self._stats is not None:
            self._stats.reset()
        self._last_cascade_at = [0] * self._nlevels
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HierarchicalAssoc levels={self._nlevels}, cuts={self._cuts}, "
            f"layer_nnz={list(self.layer_nnz)}>"
        )
