"""Hierarchical hypersparse matrices — the paper's primary contribution.

:class:`HierarchicalMatrix` implements the N-level cascade of GraphBLAS
hypersparse matrices described in the paper; :class:`HierarchicalAssoc` applies
the same cascade to D4M associative arrays (the closest prior system and the
main Figure 2 baseline); cut policies and update statistics make the
"easily tunable parameters" and "reduced memory pressure" claims measurable.
"""

from .checkpoint import load_checkpoint, save_checkpoint
from .hier_assoc import HierarchicalAssoc
from .hierarchical import HierarchicalMatrix
from .policy import AdaptiveCuts, CutPolicy, FixedCuts, GeometricCuts, default_policy
from .reductions import IncrementalReductions, KeySetCascade
from .stats import UpdateStats

__all__ = [
    "HierarchicalMatrix",
    "HierarchicalAssoc",
    "IncrementalReductions",
    "KeySetCascade",
    "save_checkpoint",
    "load_checkpoint",
    "CutPolicy",
    "FixedCuts",
    "GeometricCuts",
    "AdaptiveCuts",
    "default_policy",
    "UpdateStats",
]
