"""Incremental shard-side analytics: reduction vectors maintained during ingest.

The paper motivates hypersparse traffic matrices by the analyses they enable —
supernode fluctuation, background models, unobserved-traffic inference — and
every one of those analyses starts from row/column reductions of the traffic
matrix: weighted out-/in-degree (packets sent/received per endpoint), fan-out/
fan-in (distinct counterparties per endpoint), and the total traffic.  Before
this module, each such query forced a full ``materialize()`` — a sort/merge of
every hierarchy layer plus the deferred pending buffer — defeating the entire
deferred-ingest design for monitoring workloads that query stats continuously.

:class:`IncrementalReductions` maintains those reductions *online*:

* Every ingest batch is observed in O(batch): coordinate/value array
  references are appended to the tracker's backlog — no sort, no merge, no
  materialize on the streaming hot path.
* Reads (and a periodic ``drain_interval`` safety valve) amortise the
  deferred work exactly like the hierarchy's own layer-1 flush: one fused
  packed-key sort serves the row sums, the distinct-coordinate dedupe, and
  the exact ``nnz`` at once, one column-order sort serves the column sums,
  and the grouped results merge into the maintained vectors via the O(n)
  :meth:`Vector.merge_sorted <repro.graphblas.vector.Vector.merge_sorted>`.
  Crucially, reads never touch the matrix itself, so a stats query leaves
  the layer-1 pending buffer (and therefore the cascade pattern) completely
  undisturbed.
* Fan-out/fan-in require knowing which coordinates are *globally new*, which a
  linear accumulation cannot tell.  :class:`KeySetCascade` solves it with the
  paper's own trick applied to a set: distinct packed ``uint64`` coordinate
  keys live in a small hierarchy of sorted arrays with geometric cuts, so
  membership tests are a few binary searches and insertions amortise
  geometrically instead of paying an O(n) merge per batch.  As a bonus the
  cascade's cardinality is the matrix's exact logical ``nnz`` — also available
  without materialising.

Exactness
---------
The maintained vectors are *exactly* the materialize-based reductions (same
stored index sets, and bit-identical values for any exactly representable
data, e.g. integer packet/byte counts in fp64 — the same guarantee the
sharded engine makes) under the conditions the tracker checks for itself:

* the combining operator is ``plus`` (reductions are linear in the updates;
  any other accumulator sets :attr:`IncrementalReductions.supported` False and
  callers fall back to the materialize path), and
* for fan/nnz, the logical shape packs into a 64-bit key
  (:func:`repro.graphblas.coords.shape_split` — always true for the paper's
  IPv4 :math:`2^{32} \\times 2^{32}` matrices; full 64-bit IPv6 shapes set
  :attr:`IncrementalReductions.fan_supported` False).  Like shard routing,
  the split is a pure function of the shape, deliberately independent of the
  global packing toggle, so disabling the packed kernels never changes the
  tracked stats.

Because updates only ever *add* entries (``plus`` never deletes a stored
coordinate, and explicit zeros remain stored per GraphBLAS semantics), the
distinct-coordinate set is monotone and the cascade never needs deletions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graphblas import arena, coords
from ..graphblas import _kernels as K
from ..graphblas._kernels import _key_group_starts, _merge_sorted_keys
from ..graphblas.binaryop import BinaryOp, binary
from ..graphblas.errors import InvalidValue
from ..graphblas.types import DataType, lookup_dtype
from ..graphblas.vector import Vector

__all__ = ["KeySetCascade", "IncrementalReductions"]

#: Default cuts of the distinct-key cascade (geometric growth, unbounded top).
DEFAULT_KEY_CUTS = (2 ** 15, 2 ** 18, 2 ** 21)


class KeySetCascade:
    """A hierarchical sorted set of ``uint64`` keys (the paper's cascade, for sets).

    Keys live in ``len(cuts) + 1`` sorted, pairwise-disjoint levels.  New keys
    are merged into level 0; whenever level ``i`` outgrows ``cuts[i]`` it is
    merged into level ``i + 1`` and cleared, so insertion cost amortises
    geometrically (almost all merges touch only the small bottom levels) while
    membership stays a handful of binary searches.

    Parameters
    ----------
    cuts:
        Level-size thresholds :math:`c_0 ... c_{N-2}`; the top level is
        unbounded.  Defaults to ``(2**15, 2**18, 2**21)``.
    """

    def __init__(self, cuts: Optional[Sequence[int]] = None):
        self._cuts: List[int] = [int(c) for c in (cuts or DEFAULT_KEY_CUTS)]
        if any(c <= 0 for c in self._cuts):
            raise InvalidValue(f"cuts must be positive, got {self._cuts}")
        self._levels: List[np.ndarray] = [
            np.empty(0, dtype=coords.KEY_DTYPE) for _ in range(len(self._cuts) + 1)
        ]

    @property
    def count(self) -> int:
        """Number of distinct keys in the set (levels are disjoint, so O(1))."""
        return sum(level.size for level in self._levels)

    @property
    def level_sizes(self) -> Tuple[int, ...]:
        """Stored keys per level (diagnostics)."""
        return tuple(level.size for level in self._levels)

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask for an array of query keys (any order)."""
        mask = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return mask
        for level in self._levels:
            if level.size == 0:
                continue
            pos = np.searchsorted(level, keys)
            pos_c = np.minimum(pos, level.size - 1)
            mask |= level[pos_c] == keys
        return mask

    def add_new(self, new_keys: np.ndarray) -> None:
        """Insert keys known to be absent from the set.

        ``new_keys`` must be sorted and duplicate-free, and disjoint from the
        current contents (callers filter through :meth:`contains` first) —
        that is what keeps every level pairwise disjoint and all merges plain
        two-way merges of disjoint sorted arrays.
        """
        if new_keys.size == 0:
            return
        if self._levels[0].size == 0:
            self._levels[0] = new_keys.astype(coords.KEY_DTYPE, copy=True)
        else:
            self._levels[0] = _merge_sorted_keys(self._levels[0], new_keys)[0]
        for i, cut in enumerate(self._cuts):
            if self._levels[i].size <= cut:
                break
            if self._levels[i + 1].size == 0:
                self._levels[i + 1] = self._levels[i]
            else:
                self._levels[i + 1] = _merge_sorted_keys(
                    self._levels[i + 1], self._levels[i]
                )[0]
            self._levels[i] = np.empty(0, dtype=coords.KEY_DTYPE)

    def to_array(self) -> np.ndarray:
        """All keys as one sorted array (test/diagnostic helper, O(n))."""
        out = np.empty(0, dtype=coords.KEY_DTYPE)
        for level in self._levels:
            if level.size:
                out = level.copy() if out.size == 0 else _merge_sorted_keys(out, level)[0]
        return out

    def clear(self) -> None:
        """Empty every level."""
        self._levels = [
            np.empty(0, dtype=coords.KEY_DTYPE) for _ in range(len(self._cuts) + 1)
        ]

    def __contains__(self, key: int) -> bool:
        return bool(self.contains(np.asarray([key], dtype=coords.KEY_DTYPE))[0])

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KeySetCascade count={self.count} levels={list(self.level_sizes)}>"


class IncrementalReductions:
    """Running row/col reduction vectors maintained per ingest batch.

    One tracker is owned by each :class:`~repro.core.HierarchicalMatrix` (and
    therefore by each shard worker's private matrix).  :meth:`observe` is
    called on the ingest hot path and costs O(batch) appends; the query
    methods below amortise the deferred sort/merge work and never touch the
    owning matrix, so stats reads do not force the hierarchy's layer-1 flush.

    Parameters
    ----------
    nrows, ncols:
        Logical shape of the tracked matrix (fixes the fan/nnz key split).
    dtype:
        Value type of the tracked matrix; the maintained vectors use the same
        type so results are bit-compatible with the materialize-based
        reductions.
    accum:
        The matrix's combining operator.  Only ``plus`` yields linear
        reductions; anything else marks the tracker unsupported.
    enabled:
        Master switch (``HierarchicalMatrix(track_reductions=False)``).
    key_cuts:
        Level cuts of the distinct-coordinate :class:`KeySetCascade`.
    drain_interval:
        Catch up the deferred reduction state after this many buffered
        updates even if nothing was read (default :math:`2^{20}`).  This is
        a safety valve, not a pacing knob: it bounds the raw backlog, the
        key-segment store, and the traffic vectors' pending arenas (plus the
        worst-case latency of the *first* stats query after a long
        uninterrupted stream), exactly as the hierarchy's first cut bounds
        its layer-1 pending buffer.  Streams shorter than the interval pay
        **zero** in-stream catch-ups — all deferred work amortises onto the
        first read.

    Query surface (shared with the sharded cross-shard view):

    * :meth:`row_traffic` / :meth:`col_traffic` — weighted out-/in-degree.
    * :meth:`row_fan` / :meth:`col_fan` — distinct counterparties.
    * :meth:`total` — total traffic; :meth:`nnz` — exact logical entry count.
    """

    def __init__(
        self,
        nrows: int,
        ncols: int,
        dtype="fp64",
        accum: Optional[BinaryOp] = None,
        *,
        enabled: bool = True,
        key_cuts: Optional[Sequence[int]] = None,
        drain_interval: int = 2 ** 20,
    ):
        self._nrows = int(nrows)
        self._ncols = int(ncols)
        self._dtype: DataType = lookup_dtype(dtype)
        accum = accum if accum is not None else binary.plus
        self._supported = bool(enabled) and accum.name == "plus"
        self._spec = coords.shape_split(self._nrows, self._ncols)
        self._fan_supported = self._supported and self._spec is not None
        self._row_traffic = Vector(self._dtype, self._nrows, name="row_traffic")
        self._col_traffic = Vector(self._dtype, self._ncols, name="col_traffic")
        self._row_fan = Vector(self._dtype, self._nrows, name="row_fan")
        self._col_fan = Vector(self._dtype, self._ncols, name="col_fan")
        self._keys = KeySetCascade(key_cuts)
        # Deferred work, arena-backed: raw observations buffer as contiguous
        # (rows, cols, value-bits) columns — appends are memcpys — and one
        # fused drain serves all four vectors and the key cascade from a
        # single packed-key sort (plus one column-order sort), instead of
        # each consumer re-sorting its own copy of the backlog.
        self._backlog = arena.make_pending(3)
        # Sorted packed-key segments inherited from layer-1 flushes (see
        # :meth:`absorb_flush`); their traffic contributions ride the
        # vectors' own pending arenas, so only the distinct-key work remains
        # here.  ``_deferred_count`` tracks entries stashed since the last
        # catch-up (= each vector's pending depth).
        self._key_segments = arena.make_pending(1)
        self._deferred_count = 0
        self._drain_interval = max(int(drain_interval), 1)
        #: Flush windows whose sort/collapse the tracker inherited for free
        #: (:meth:`absorb_flush`), catch-ups over deferred flush segments
        #: only, and catch-ups that paid a full sort over raw triples.
        #: Diagnostics for the ingest-overhead regression benchmark.
        self.piggybacked_drains = 0
        self.run_merges = 0
        self.full_drains = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def supported(self) -> bool:
        """True when the linear reductions (traffic/total) are maintained."""
        return self._supported

    @property
    def fan_supported(self) -> bool:
        """True when fan-out/fan-in/nnz are maintained (packable shape only)."""
        return self._fan_supported

    @property
    def dtype(self) -> DataType:
        """Value type of the maintained vectors."""
        return self._dtype

    # ------------------------------------------------------------------ #
    # ingest-side hook
    # ------------------------------------------------------------------ #

    def observe(self, rows, cols, values=1, *, copy: bool = True) -> None:
        """Record one ingest batch (O(batch): appends only, no sort/merge).

        Parameters
        ----------
        rows, cols:
            Batch coordinates (arrays, sequences, or scalars — the same
            domain :meth:`HierarchicalMatrix.update` accepts).
        values:
            Per-coordinate values or a scalar broadcast over the batch.
        copy:
            Accepted for API compatibility.  The backlog arena copies every
            batch at append time (canonicalising values to raw bits in the
            same pass), so callers may reuse their buffers either way.
        """
        if not self._supported:
            return
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if r.size == 0:
            return
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            v = np.full(r.size, values, dtype=self._dtype.np_type)
        else:
            v = np.asarray(values)
        self._backlog.append(r, c, arena.value_bits(v, self._dtype.np_type))
        if self._backlog.used >= self._drain_interval:
            self._drain()

    def observe_matrix(self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        """Record an already-extracted triple set (ownership transfers)."""
        self.observe(rows, cols, vals, copy=False)

    @staticmethod
    def _group_reduce(sorted_idx: np.ndarray, sorted_vals: np.ndarray):
        """Collapse runs of equal indices in sorted order via one ``reduceat``."""
        starts = _key_group_starts(sorted_idx)
        return sorted_idx[starts], binary.plus.ufunc.reduceat(sorted_vals, starts)

    def _drain(self) -> None:
        """Fused amortised catch-up of every deferred reduction (periodic or on read).

        Two independent stores feed it.  The *raw backlog* (updates observed
        since the last aligned flush) pays the full treatment: one stable
        argsort of the packed coordinate keys serves three consumers at once
        — row sums (keys sort row-major), the distinct-key dedupe feeding
        fan/nnz, and the cascade insertion — and a second sort by column
        serves the column sums.  Unpackable (IPv6) shapes fall back to two
        plain per-axis sorts with fan tracking disabled.  The backlog is an
        arena, so the sorts read its used prefix directly — no concatenation
        of per-batch chunks.  The *flush segments* absorbed by
        :meth:`absorb_flush` then settle via :meth:`_catch_up`, which never
        sees raw triples at all.
        """
        if self._backlog.used:
            self.full_drains += 1
            r, c, bits = self._backlog.views()
            v = arena.bits_to_values(bits, self._dtype.np_type)
            if self._fan_supported:
                keys = coords.pack(r, c, self._spec)
                order = np.argsort(keys, kind="stable")
                skeys = keys[order]
                idx, sums = self._group_reduce(
                    skeys >> np.uint64(self._spec.col_bits), v[order]
                )
                self._row_traffic.merge_sorted(idx, sums)
                unique_keys = skeys[_key_group_starts(skeys)]
                self._insert_new_keys(unique_keys)
            else:
                order = np.argsort(r, kind="stable")
                idx, sums = self._group_reduce(r[order], v[order])
                self._row_traffic.merge_sorted(idx, sums)
            col_order = np.argsort(c, kind="stable")
            cidx, csums = self._group_reduce(c[col_order], v[col_order])
            self._col_traffic.merge_sorted(cidx, csums)
            self._backlog.reset()
        self._catch_up()

    def _catch_up(self) -> None:
        """Settle the deferred flush segments (the read-time half of the design).

        The traffic contributions of absorbed flush windows already live in
        the vectors' own pending arenas (appended by :meth:`absorb_flush`),
        so catching up costs exactly one vector ``_wait`` each — a single
        index argsort plus an O(n) merge, independent of how many windows
        accumulated.  The distinct-key work sorts the stashed key segments
        in one shot: the segment store is a concatenation of sorted runs, so
        the stable (timsort) ``np.sort`` detects the runs and merges them in
        far under a from-scratch sort's budget, and a single pass of the
        result through the cascade replaces one :meth:`_insert_new_keys`
        call *per window* with one per catch-up.
        """
        if self._deferred_count == 0:
            return
        self.run_merges += 1
        if self._key_segments.used:
            (segments,) = self._key_segments.views()
            skeys = np.sort(segments, kind="stable")
            self._key_segments.reset()
            self._insert_new_keys(skeys[_key_group_starts(skeys)])
        self._row_traffic._wait()
        self._col_traffic._wait()
        self._deferred_count = 0

    def _clear_deferred(self) -> None:
        self._backlog.reset()
        self._key_segments.reset()
        self._deferred_count = 0

    def _insert_new_keys(self, unique_keys: np.ndarray) -> None:
        """Dedupe sorted distinct keys against the cascade; update fan vectors."""
        new = unique_keys[~self._keys.contains(unique_keys)]
        if not new.size:
            return
        self._keys.add_new(new)
        new_rows, new_cols = coords.unpack(new, self._spec)
        nr_idx, nr_counts = self._group_reduce(
            new_rows, np.ones(new_rows.size, dtype=self._dtype.np_type)
        )
        self._row_fan.merge_sorted(nr_idx, nr_counts)
        new_cols = np.sort(new_cols, kind="stable")
        nc_idx, nc_counts = self._group_reduce(
            new_cols, np.ones(new_cols.size, dtype=self._dtype.np_type)
        )
        self._col_fan.merge_sorted(nc_idx, nc_counts)

    def absorb_flush(self, raw_count, op, rows, cols, vals, keys=None, spec=None) -> bool:
        """Absorb a layer-1 flush's already-sorted output as deferred segments.

        ``HierarchicalMatrix`` registers this as the layer-1
        :attr:`Matrix.flush_hook`: the flush has just paid for a stable
        packed-key sort and duplicate collapse of exactly the update window
        the tracker has been buffering, so the tracker swaps its raw copy of
        the window for the flush's collapsed output (historically the
        tracker's own periodic re-sorts of the same triples cost ~40% ingest
        rate on long unqueried streams).  The handoff itself stays on the
        ingest hot path, so it does only memcpys: the window's (row, value)
        and (column, value) pairs are lazily appended straight into the
        traffic vectors' pending arenas (one ``build(lazy=True)`` each), and
        its sorted packed keys are stashed as a segment for the distinct-key
        cascade.  All the remaining merge/sort work lands in
        :meth:`_catch_up` — on the next read, or here once the deferred
        depth reaches the drain interval — where it amortises across every
        window absorbed since: one index sort + O(n) merge per vector and
        one timsort over the concatenated sorted key segments, instead of
        per-window searchsorted merges against the full reduction vectors.

        Alignment is verified by count: the hierarchy appends every update to
        the layer-1 pending buffer and the tracker backlog in lockstep, so
        the flush's pre-collapse size equals the backlog depth unless the
        tracker drained mid-window (an interval drain inside ``observe`` or a
        stats read).  On any mismatch the tracker falls back to a normal
        :meth:`_drain` — correct either way, just without the free sort.

        Exactness: the flush output is collapsed per coordinate (stable,
        insertion order) before the per-row/per-column regrouping of the
        eventual catch-up, while a raw drain groups the triples directly.
        Both orderings sum the same multiset per index, so results are
        identical for any exactly representable values — the same qualifier
        the maintained vectors already carry (see module docstring).
        """
        if not self._supported:
            return False
        if raw_count <= 0 or raw_count != self._backlog.used:
            # Mid-window drain desynced the window; drain now so the next
            # flush window starts aligned with an empty backlog.
            self._drain()
            return False
        if op.name != "plus":
            self._drain()
            return False
        self._backlog.reset()
        if self.piggybacked_drains == 0:
            # First piggybacked flush: this matrix is streaming for real, and
            # the deferred stores are bounded by the drain interval, so
            # reserve them once up front — geometric-growth prefix copies
            # never hit the ingest hot path, and the untouched tail of the
            # reservation stays uncommitted (address space, not RSS).
            self._row_traffic.reserve_pending(self._drain_interval)
            self._col_traffic.reserve_pending(self._drain_interval)
            self._key_segments.reserve(self._drain_interval)
        # Straight into the vectors' pending arenas: the flush output is
        # already validated uint64/in-range, so the public build()'s
        # conversion and bounds checks would be pure per-flush overhead.
        self._row_traffic._append_pending(rows, vals, binary.plus)
        self._col_traffic._append_pending(cols, vals, binary.plus)
        if self._fan_supported:
            if keys is None or spec != self._spec:
                # Packing is monotone in lexicographic (row, col) order, so
                # re-packing the sorted flush output under the tracker's own
                # split keeps it sorted — no new argsort needed.
                keys = coords.pack(rows, cols, self._spec)
            self._key_segments.append(keys)
        self._deferred_count += int(rows.size)
        self.piggybacked_drains += 1
        if self._deferred_count >= self._drain_interval:
            # Same memory/first-query bound the raw backlog has, but over
            # collapsed windows: the raw backlog is empty here, so this
            # settles the deferred segments only.
            self._catch_up()
        return True

    # ------------------------------------------------------------------ #
    # queries (never touch the owning matrix)
    # ------------------------------------------------------------------ #

    def _require(self, fan: bool = False) -> None:
        if not self._supported:
            raise InvalidValue(
                "incremental reductions unavailable (disabled or non-plus accumulator)"
            )
        if fan and not self._fan_supported:
            raise InvalidValue(
                "incremental fan/nnz unavailable: shape does not pack into a "
                "64-bit coordinate key (full IPv6 matrices fall back to materialize)"
            )

    def row_traffic(self) -> Vector:
        """Weighted out-degree: per-row sum of every update observed so far."""
        self._require()
        self._drain()
        return self._row_traffic.dup()

    def col_traffic(self) -> Vector:
        """Weighted in-degree: per-column sum of every update observed so far."""
        self._require()
        self._drain()
        return self._col_traffic.dup()

    def row_fan(self) -> Vector:
        """Fan-out: number of distinct destinations stored per source row."""
        self._require(fan=True)
        self._drain()
        return self._row_fan.dup()

    def col_fan(self) -> Vector:
        """Fan-in: number of distinct sources stored per destination column."""
        self._require(fan=True)
        self._drain()
        return self._col_fan.dup()

    def total(self):
        """Total traffic (sum of every observed update), in the matrix dtype."""
        self._require()
        self._drain()
        return self._row_traffic.reduce("plus")

    def nnz(self) -> int:
        """Exact logical entry count (cardinality of the distinct-key cascade)."""
        self._require(fan=True)
        self._drain()
        return self._keys.count

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Forget everything (mirrors ``HierarchicalMatrix.clear``)."""
        self._row_traffic.clear()
        self._col_traffic.clear()
        self._row_fan.clear()
        self._col_fan.clear()
        self._keys.clear()
        self._clear_deferred()

    def rebuild_from_triples(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> None:
        """Re-derive all state from a materialised (sorted, duplicate-free) COO set.

        Used by checkpoint restore, which injects layer contents without
        replaying the update stream.  O(n log n) once at load time.
        """
        self.reset()
        if not self._supported:
            return
        self.observe(rows, cols, vals, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "unsupported"
            if not self._supported
            else ("traffic+fan" if self._fan_supported else "traffic-only")
        )
        return (
            f"<IncrementalReductions {state}, "
            f"backlog={self._backlog.used}+{self._deferred_count}, "
            f"distinct={self._keys.count}>"
        )
