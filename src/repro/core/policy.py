"""Cut policies for hierarchical hypersparse matrices.

The paper states that "the parameters of hierarchical hypersparse matrices rely
on controlling the number of entries in each level in the hierarchy before an
update is cascaded" and that "the parameters are easily tunable to achieve
optimal performance for a variety of applications".  A :class:`CutPolicy`
encapsulates that tuning: it produces the per-level nonzero thresholds
:math:`c_1 \\le c_2 \\le ... \\le c_{N-1}` (the last layer is unbounded) and may
optionally adapt them while the stream runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "CutPolicy",
    "FixedCuts",
    "GeometricCuts",
    "AdaptiveCuts",
    "default_policy",
]


class CutPolicy(ABC):
    """Produces and (optionally) adapts the per-level cut thresholds."""

    @abstractmethod
    def initial_cuts(self) -> List[int]:
        """The cut values :math:`c_1 ... c_{N-1}` for the non-terminal layers."""

    @property
    def nlevels(self) -> int:
        """Total number of layers (cuts plus the unbounded last layer)."""
        return len(self.initial_cuts()) + 1

    def on_cascade(
        self,
        level: int,
        nvals_spilled: int,
        cuts: List[int],
        updates_since_last: int = 0,
    ) -> List[int]:
        """Hook called after layer ``level`` cascades; may return adjusted cuts.

        Parameters
        ----------
        level:
            0-based index of the layer that overflowed.
        nvals_spilled:
            Number of stored entries pushed into the next layer.
        cuts:
            The current cut values.
        updates_since_last:
            Element updates submitted since this layer last cascaded (supplied
            by the hierarchical matrix; adaptive policies use it to judge how
            "hot" the layer is).

        The default implementation leaves the cuts unchanged.
        """
        return cuts

    def describe(self) -> str:
        """Short human-readable description used in benchmark reports."""
        return f"{type(self).__name__}(cuts={self.initial_cuts()})"


@dataclass(frozen=True)
class FixedCuts(CutPolicy):
    """Explicit, constant cut values.

    Parameters
    ----------
    cuts:
        Strictly positive, non-decreasing thresholds for layers
        :math:`1 ... N-1`.
    """

    cuts: Sequence[int]

    def __post_init__(self) -> None:
        values = [int(c) for c in self.cuts]
        if not values:
            raise ValueError("FixedCuts requires at least one cut value")
        if any(c <= 0 for c in values):
            raise ValueError(f"cut values must be positive, got {values}")
        if any(b < a for a, b in zip(values, values[1:])):
            raise ValueError(f"cut values must be non-decreasing, got {values}")

    def initial_cuts(self) -> List[int]:
        return [int(c) for c in self.cuts]


@dataclass(frozen=True)
class GeometricCuts(CutPolicy):
    """Cuts growing geometrically: :math:`c_i = c_1 \\cdot r^{i-1}`.

    This is the configuration used throughout the Kepner et al. hierarchical
    papers — each successive layer holds roughly ``ratio`` times more entries,
    matching the capacity ratios of successive levels of the memory hierarchy.

    Parameters
    ----------
    first_cut:
        Threshold of the fastest (smallest) layer.
    ratio:
        Growth factor between successive layers.
    nlevels:
        Total number of layers, including the unbounded last layer.
    """

    first_cut: int = 2 ** 17
    ratio: int = 8
    nlevels_total: int = 4

    def __post_init__(self) -> None:
        if self.first_cut <= 0:
            raise ValueError("first_cut must be positive")
        if self.ratio < 1:
            raise ValueError("ratio must be >= 1")
        if self.nlevels_total < 2:
            raise ValueError("a hierarchy needs at least 2 levels")

    def initial_cuts(self) -> List[int]:
        return [self.first_cut * self.ratio ** i for i in range(self.nlevels_total - 1)]

    @property
    def nlevels(self) -> int:
        return self.nlevels_total


class AdaptiveCuts(CutPolicy):
    """Cuts that widen when a layer cascades too frequently.

    This implements the "easily tunable" extension suggested by the paper: if a
    layer overflows more often than ``target_cascade_interval`` updates, its cut
    is doubled (up to ``max_growth`` times), trading a little more memory in the
    faster layer for fewer expensive merges into the slower one.

    Parameters
    ----------
    first_cut, ratio, nlevels_total:
        Initial geometric configuration (as :class:`GeometricCuts`).
    target_cascade_interval:
        Desired minimum number of element updates between cascades of the same
        layer.
    max_growth:
        Maximum number of doublings applied to any single cut.
    """

    def __init__(
        self,
        first_cut: int = 2 ** 17,
        ratio: int = 8,
        nlevels_total: int = 4,
        *,
        target_cascade_interval: int = 4,
        max_growth: int = 6,
    ):
        self._base = GeometricCuts(first_cut, ratio, nlevels_total)
        self.target_cascade_interval = int(target_cascade_interval)
        self.max_growth = int(max_growth)
        self._growth_applied = [0] * (nlevels_total - 1)

    def initial_cuts(self) -> List[int]:
        return self._base.initial_cuts()

    @property
    def nlevels(self) -> int:
        return self._base.nlevels

    def on_cascade(
        self,
        level: int,
        nvals_spilled: int,
        cuts: List[int],
        updates_since_last: int = 0,
    ) -> List[int]:
        """Double the cut of a layer that cascades again too soon.

        A layer is "too hot" when fewer than ``target_cascade_interval * c_level``
        element updates arrived since its previous cascade — i.e. it is spilling
        before it has absorbed several times its own capacity worth of traffic.
        """
        if level >= len(cuts):
            return cuts
        threshold = self.target_cascade_interval * cuts[level]
        if (
            updates_since_last < threshold
            and self._growth_applied[level] < self.max_growth
        ):
            new_cuts = list(cuts)
            new_cuts[level] *= 2
            # Keep the non-decreasing invariant.
            for i in range(level + 1, len(new_cuts)):
                new_cuts[i] = max(new_cuts[i], new_cuts[i - 1])
            self._growth_applied[level] += 1
            return new_cuts
        return cuts

    def describe(self) -> str:
        return (
            f"AdaptiveCuts(initial={self.initial_cuts()}, "
            f"target_interval={self.target_cascade_interval})"
        )


def default_policy() -> GeometricCuts:
    """The library default: 4 layers, first cut 131072, growth ratio 8.

    These values keep the first layer comfortably inside a typical L2/L3 cache
    (a few MiB of coordinate+value storage) while the last layer is unbounded,
    which is the regime the paper benchmarks.
    """
    return GeometricCuts(first_cut=2 ** 17, ratio=8, nlevels_total=4)
