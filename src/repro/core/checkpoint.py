"""Checkpoint / restore for hierarchical hypersparse matrices.

Long-running traffic-monitoring pipelines (the paper's processes stream for
hours) need to survive restarts without replaying the whole stream.  A
checkpoint stores each layer's coordinate triples plus the hierarchy's
configuration (cuts, dtype, dimensions, statistics) in a single compressed
NumPy ``.npz`` file; restoring rebuilds an equivalent
:class:`~repro.core.hierarchical.HierarchicalMatrix` whose materialised content
is bit-identical to the original.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..graphblas import Matrix
from .hierarchical import HierarchicalMatrix
from .stats import UpdateStats

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_bytes",
    "load_checkpoint_bytes",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _checkpoint_arrays(matrix: HierarchicalMatrix) -> dict:
    arrays = {}
    meta = {
        "format_version": _FORMAT_VERSION,
        "nrows": str(matrix.nrows),   # may exceed int64; store as strings
        "ncols": str(matrix.ncols),
        "dtype": matrix.dtype.name,
        "cuts": list(matrix.cuts),
        "nlevels": matrix.nlevels,
        "name": matrix.name,
    }
    if matrix.stats is not None:
        meta["stats"] = matrix.stats.as_dict()
    for i, layer in enumerate(matrix.layers):
        rows, cols, vals = layer.extract_tuples()
        arrays[f"layer{i}_rows"] = rows
        arrays[f"layer{i}_cols"] = cols
        arrays[f"layer{i}_vals"] = vals
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return arrays


def _matrix_from_npz(data) -> HierarchicalMatrix:
    meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {meta.get('format_version')!r}"
        )
    matrix = HierarchicalMatrix(
        int(meta["nrows"]),
        int(meta["ncols"]),
        meta["dtype"],
        cuts=list(meta["cuts"]),
        name=meta.get("name", ""),
    )
    for i in range(meta["nlevels"]):
        rows = data[f"layer{i}_rows"]
        cols = data[f"layer{i}_cols"]
        vals = data[f"layer{i}_vals"]
        if rows.size:
            # Restore the layer content directly; bypassing update() keeps
            # the exact layer occupancy (no spurious cascades on load).
            matrix.layers[i].build(rows, cols, vals)
    if matrix.incremental.supported:
        # Layer injection bypassed the incremental tracker; re-derive its
        # reduction vectors from the materialised content once at load.
        matrix.incremental.rebuild_from_triples(*matrix.materialize().extract_tuples())
    stats_meta = meta.get("stats")
    if stats_meta is not None and matrix.stats is not None:
        stats = matrix.stats
        stats.total_updates = int(stats_meta["total_updates"])
        stats.update_calls = int(stats_meta["update_calls"])
        stats.element_writes = [int(x) for x in stats_meta["element_writes"]]
        stats.cascades = [int(x) for x in stats_meta["cascades"]]
        stats.max_layer_nvals = [int(x) for x in stats_meta["max_layer_nvals"]]
        stats.elapsed_seconds = float(stats_meta["elapsed_seconds"])
    return matrix


def save_checkpoint(matrix: HierarchicalMatrix, path: PathLike) -> Path:
    """Write ``matrix`` (layers, cuts, stats) to ``path`` as a compressed .npz.

    Returns the path written.  Pending scalar insertions are merged first so
    the checkpoint is self-contained.
    """
    path = Path(path)
    np.savez_compressed(path, **_checkpoint_arrays(matrix))
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(path: PathLike) -> HierarchicalMatrix:
    """Rebuild a :class:`HierarchicalMatrix` previously written by :func:`save_checkpoint`."""
    with np.load(Path(path)) as data:
        return _matrix_from_npz(data)


def checkpoint_bytes(matrix: HierarchicalMatrix) -> bytes:
    """The checkpoint of ``matrix`` as in-memory .npz bytes (no file touched).

    Replica resynchronisation ships these bytes over the worker reply channel
    so a freshly respawned replica can catch up to its primary without either
    side needing shared filesystem access.
    """
    buf = io.BytesIO()
    np.savez_compressed(buf, **_checkpoint_arrays(matrix))
    return buf.getvalue()


def load_checkpoint_bytes(data: bytes) -> HierarchicalMatrix:
    """Rebuild a :class:`HierarchicalMatrix` from :func:`checkpoint_bytes` output."""
    with np.load(io.BytesIO(data)) as npz:
        return _matrix_from_npz(npz)
