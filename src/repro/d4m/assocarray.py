"""D4M associative arrays.

An :class:`Assoc` is the D4M data structure the paper's prior work used for
traffic matrices: a sparse matrix whose rows and columns are labelled by sorted
lists of strings, so arbitrary identifiers (IP addresses, domain names, time
stamps) can index the array directly.  Internally an Assoc is a pair of
:class:`~repro.d4m.string_table.StringTable` key tables plus a hypersparse
:class:`~repro.graphblas.matrix.Matrix` adjacency; every Assoc operation
reduces to key-table manipulation plus a GraphBLAS operation, mirroring the
Matlab/Octave D4M implementation.

The D4M baseline matters for the reproduction because Figure 2 of the paper
compares hierarchical GraphBLAS against hierarchical/flat D4M ingest rates:
the string-key bookkeeping is exactly the overhead GraphBLAS integer indexing
removes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..graphblas import Matrix, binary
from ..graphblas.binaryop import BinaryOp
from .string_table import StringTable

__all__ = ["Assoc"]

KeyLike = Union[str, int, float]


def _as_key_list(keys) -> list:
    if isinstance(keys, (str, int, float)):
        return [keys]
    return list(keys)


class Assoc:
    """A D4M associative array.

    Parameters
    ----------
    row_keys, col_keys:
        Row/column labels, one per triple (strings or values convertible to
        strings).
    values:
        Numeric values, one per triple, or a scalar broadcast to every triple.
    dup_op:
        Operator combining duplicate (row, col) triples (default ``plus``).

    Examples
    --------
    >>> A = Assoc(["1.2.3.4", "1.2.3.4"], ["5.6.7.8", "9.9.9.9"], [1, 1])
    >>> A.nnz
    2
    >>> A["1.2.3.4", "5.6.7.8"]
    1.0
    """

    __slots__ = ("_row_table", "_col_table", "_matrix")

    def __init__(
        self,
        row_keys: Iterable[KeyLike] = (),
        col_keys: Iterable[KeyLike] = (),
        values: Union[Sequence[float], float] = 1.0,
        *,
        dup_op: Optional[BinaryOp] = None,
        dtype="fp64",
    ):
        rows = _as_key_list(row_keys)
        cols = _as_key_list(col_keys)
        if len(rows) != len(cols):
            raise ValueError(
                f"row and column key lists differ in length ({len(rows)} vs {len(cols)})"
            )
        if np.isscalar(values):
            vals = np.full(len(rows), values, dtype=np.float64)
        else:
            vals = np.asarray(list(values), dtype=np.float64)
            if vals.size != len(rows):
                raise ValueError(
                    f"values length {vals.size} does not match key length {len(rows)}"
                )
        self._row_table = StringTable(rows)
        self._col_table = StringTable(cols)
        nr = max(len(self._row_table), 1)
        nc = max(len(self._col_table), 1)
        self._matrix = Matrix(dtype, nr, nc)
        if rows:
            ri = self._row_table.require(rows)
            ci = self._col_table.require(cols)
            self._matrix.build(ri, ci, vals, dup_op=dup_op or binary.plus)

    # ------------------------------------------------------------------ #
    # alternative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_parts(cls, row_table: StringTable, col_table: StringTable, matrix: Matrix) -> "Assoc":
        out = cls.__new__(cls)
        out._row_table = row_table
        out._col_table = col_table
        out._matrix = matrix
        return out

    @classmethod
    def empty(cls, dtype="fp64") -> "Assoc":
        """An associative array with no triples."""
        return cls((), (), dtype=dtype)

    @classmethod
    def from_matrix(cls, matrix: Matrix, row_keys: Sequence[KeyLike], col_keys: Sequence[KeyLike]) -> "Assoc":
        """Wrap an existing adjacency matrix with explicit key labels.

        ``row_keys[i]`` labels matrix row ``i``; the keys must already be
        sorted and unique (as D4M requires).
        """
        rt = StringTable(row_keys)
        ct = StringTable(col_keys)
        if len(rt) != matrix.nrows or len(ct) != matrix.ncols:
            raise ValueError(
                "key table sizes must equal matrix dimensions "
                f"({len(rt)}x{len(ct)} vs {matrix.nrows}x{matrix.ncols})"
            )
        return cls._from_parts(rt, ct, matrix.dup())

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def row(self) -> StringTable:
        """The sorted row-key table."""
        return self._row_table

    @property
    def col(self) -> StringTable:
        """The sorted column-key table."""
        return self._col_table

    @property
    def adjacency(self) -> Matrix:
        """The underlying hypersparse adjacency matrix (positional indices)."""
        return self._matrix

    @property
    def nnz(self) -> int:
        """Number of stored triples."""
        return self._matrix.nvals

    @property
    def shape(self) -> Tuple[int, int]:
        """``(number of row keys, number of column keys)``."""
        return (len(self._row_table), len(self._col_table))

    @property
    def memory_usage(self) -> int:
        """Approximate bytes used by the key tables and the adjacency."""
        return int(
            self._matrix.memory_usage
            + self._row_table.keys.nbytes
            + self._col_table.keys.nbytes
        )

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def find(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (row_keys, col_keys, values) triples, D4M's ``find`` operation."""
        r, c, v = self._matrix.extract_tuples()
        return (
            self._row_table.keys[r.astype(np.int64)],
            self._col_table.keys[c.astype(np.int64)],
            v,
        )

    triples = find

    def getval(self, row_key: KeyLike, col_key: KeyLike, default=None):
        """Read a single value by key pair."""
        ri = self._row_table.lookup([row_key])[0]
        ci = self._col_table.lookup([col_key])[0]
        if ri < 0 or ci < 0:
            return default
        return self._matrix.extractElement(int(ri), int(ci), default)

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            rk, ck = key
            if isinstance(rk, (str, int, float)) and isinstance(ck, (str, int, float)):
                return self.getval(rk, ck)
            return self.subsref(rk, ck)
        raise TypeError("Assoc indexing requires a (row, col) key pair")

    def __contains__(self, key) -> bool:
        return self.getval(key[0], key[1]) is not None

    def __iter__(self):
        rk, ck, v = self.find()
        for i in range(v.size):
            yield str(rk[i]), str(ck[i]), float(v[i])

    def subsref(self, row_sel=None, col_sel=None) -> "Assoc":
        """Subscript by key lists, ``slice(None)`` (everything), or ``'prefix*'`` patterns."""
        row_idx = self._resolve_selector(self._row_table, row_sel)
        col_idx = self._resolve_selector(self._col_table, col_sel)
        kwargs = {}
        if row_idx is not None:
            kwargs["rows"] = row_idx
        if col_idx is not None:
            kwargs["cols"] = col_idx
        sub = self._matrix.extract(**kwargs)
        new_rows = self._row_table.take(row_idx) if row_idx is not None else self._row_table
        new_cols = self._col_table.take(col_idx) if col_idx is not None else self._col_table
        # extract() reindexes against the supplied (sorted) index lists, which
        # matches the take() ordering because both are sorted ascending.
        sub.resize(max(len(new_rows), 1), max(len(new_cols), 1))
        return Assoc._from_parts(new_rows, new_cols, sub)

    @staticmethod
    def _resolve_selector(table: StringTable, sel):
        if sel is None or (isinstance(sel, slice) and sel == slice(None)):
            return None
        if isinstance(sel, str) and sel.endswith("*"):
            return table.startswith(sel[:-1])
        if isinstance(sel, tuple) and len(sel) == 2:
            return table.select_range(sel[0], sel[1])
        keys = _as_key_list(sel)
        idx = table.lookup(keys)
        return idx[idx >= 0]

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def _align(self, other: "Assoc") -> Tuple[StringTable, StringTable, Matrix, Matrix]:
        """Re-express both operands over the union of their key tables."""
        row_table, self_rmap, other_rmap = self._row_table.union(other._row_table)
        col_table, self_cmap, other_cmap = self._col_table.union(other._col_table)
        a = self._reindexed(self_rmap, self_cmap, len(row_table), len(col_table))
        b = other._reindexed(other_rmap, other_cmap, len(row_table), len(col_table))
        return row_table, col_table, a, b

    def _reindexed(self, rmap: np.ndarray, cmap: np.ndarray, nrows: int, ncols: int) -> Matrix:
        r, c, v = self._matrix.extract_tuples()
        out = Matrix(self._matrix.dtype, max(nrows, 1), max(ncols, 1))
        if r.size:
            out.build(rmap[r.astype(np.int64)], cmap[c.astype(np.int64)], v, dup_op=binary.plus)
        return out

    def ewise(self, other: "Assoc", op: BinaryOp, *, union: bool = True) -> "Assoc":
        """Element-wise combination over the union (or intersection) of keys."""
        row_table, col_table, a, b = self._align(other)
        result = a.ewise_add(b, op) if union else a.ewise_mult(b, op)
        return Assoc._from_parts(row_table, col_table, result)

    def __add__(self, other: "Assoc") -> "Assoc":
        """Assoc addition: union of keys, summed values (the D4M workhorse)."""
        if not isinstance(other, Assoc):
            return NotImplemented
        return self.ewise(other, binary.plus, union=True)

    def __and__(self, other: "Assoc") -> "Assoc":
        """Element-wise minimum over the intersection of keys (D4M ``&``)."""
        return self.ewise(other, binary.min, union=False)

    def __or__(self, other: "Assoc") -> "Assoc":
        """Element-wise maximum over the union of keys (D4M ``|``)."""
        return self.ewise(other, binary.max, union=True)

    def multiply(self, other: "Assoc") -> "Assoc":
        """Element-wise product over the intersection of keys."""
        return self.ewise(other, binary.times, union=False)

    def sqin(self) -> "Assoc":
        """Correlation of columns: ``A.T @ A`` (D4M ``sqIn``)."""
        m = self._matrix.transpose().mxm(self._matrix)
        return Assoc._from_parts(self._col_table, self._col_table, m)

    def sqout(self) -> "Assoc":
        """Correlation of rows: ``A @ A.T`` (D4M ``sqOut``)."""
        m = self._matrix.mxm(self._matrix.transpose())
        return Assoc._from_parts(self._row_table, self._row_table, m)

    def transpose(self) -> "Assoc":
        """Swap rows and columns."""
        return Assoc._from_parts(self._col_table, self._row_table, self._matrix.transpose())

    @property
    def T(self) -> "Assoc":
        """Alias of :meth:`transpose`."""
        return self.transpose()

    def sum_rows(self) -> "Assoc":
        """Column sums as a 1 x ncols associative array."""
        vec = self._matrix.reduce_columnwise()
        idx, vals = vec.to_coo()
        keys = self._col_table.keys[idx.astype(np.int64)]
        return Assoc(["sum"] * len(keys), keys.tolist(), vals)

    def sum_cols(self) -> "Assoc":
        """Row sums as an nrows x 1 associative array."""
        vec = self._matrix.reduce_rowwise()
        idx, vals = vec.to_coo()
        keys = self._row_table.keys[idx.astype(np.int64)]
        return Assoc(keys.tolist(), ["sum"] * len(keys), vals)

    def logical(self) -> "Assoc":
        """Replace every stored value with 1 (D4M ``logical``/``spones``)."""
        return Assoc._from_parts(self._row_table, self._col_table, self._matrix.apply("one"))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Assoc):
            return NotImplemented
        return (
            self._row_table == other._row_table
            and self._col_table == other._col_table
            and self._matrix.isequal(other._matrix)
        )

    def __bool__(self) -> bool:
        return self.nnz > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Assoc {self.shape[0]}x{self.shape[1]} keys, nnz={self.nnz}>"

    def display(self, max_triples: int = 20) -> str:
        """Human-readable triple listing (D4M ``disp``)."""
        rk, ck, v = self.find()
        lines = [f"Assoc with {v.size} triples:"]
        for i in range(min(max_triples, v.size)):
            lines.append(f"  ({rk[i]}, {ck[i]}) : {v[i]}")
        if v.size > max_triples:
            lines.append(f"  ... {v.size - max_triples} more")
        return "\n".join(lines)
