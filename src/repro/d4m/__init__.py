"""D4M associative arrays over the hypersparse GraphBLAS substrate.

This subpackage provides the Dynamic Distributed Dimensional Data Model (D4M)
associative-array abstraction used by the paper's prior-work baselines: sparse
arrays indexed by sorted string keys, supporting addition (union of keys),
subscripting by key/range/prefix, transpose, correlation (``sqIn``/``sqOut``)
and row/column sums.
"""

from .assocarray import Assoc
from .string_table import StringTable

__all__ = ["Assoc", "StringTable"]
