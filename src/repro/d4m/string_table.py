"""Sorted string key tables for D4M associative arrays.

D4M associative arrays label the rows and columns of an underlying sparse
matrix with *sorted lists of strings*.  :class:`StringTable` implements that
sorted list: an immutable, duplicate-free, lexicographically ordered array of
keys with vectorised lookup (key -> index), union, and slicing by key range —
the operations Assoc-array addition and subscripting are built from.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

__all__ = ["StringTable"]

KeyLike = Union[str, int, float]


def _normalise_keys(keys: Iterable[KeyLike]) -> np.ndarray:
    """Convert keys to a NumPy unicode array (numbers become their repr)."""
    as_list = [k if isinstance(k, str) else repr(k) if isinstance(k, float) else str(k) for k in keys]
    return np.asarray(as_list, dtype=np.str_)


class StringTable:
    """A sorted, duplicate-free table of string keys.

    Examples
    --------
    >>> t = StringTable(["b", "a", "b"])
    >>> list(t)
    ['a', 'b']
    >>> t.lookup(["b", "z"]).tolist()
    [1, -1]
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: Iterable[KeyLike] = ()):
        arr = _normalise_keys(keys)
        self._keys = np.unique(arr) if arr.size else arr

    @classmethod
    def _from_sorted_unique(cls, keys: np.ndarray) -> "StringTable":
        out = cls.__new__(cls)
        out._keys = keys
        return out

    # ------------------------------------------------------------------ #

    @property
    def keys(self) -> np.ndarray:
        """The sorted key array (do not mutate)."""
        return self._keys

    def __len__(self) -> int:
        return int(self._keys.size)

    def __iter__(self):
        return iter(self._keys.tolist())

    def __contains__(self, key: KeyLike) -> bool:
        return bool(self.lookup([key])[0] >= 0)

    def __getitem__(self, index: int) -> str:
        return str(self._keys[int(index)])

    def __eq__(self, other) -> bool:
        if not isinstance(other, StringTable):
            return NotImplemented
        return bool(np.array_equal(self._keys, other._keys))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(self._keys[:4].tolist())
        suffix = ", ..." if len(self) > 4 else ""
        return f"StringTable([{preview}{suffix}], n={len(self)})"

    # ------------------------------------------------------------------ #

    def lookup(self, keys: Iterable[KeyLike]) -> np.ndarray:
        """Indices of ``keys`` within the table; ``-1`` marks missing keys."""
        query = _normalise_keys(keys)
        if self._keys.size == 0:
            return np.full(query.size, -1, dtype=np.int64)
        pos = np.searchsorted(self._keys, query)
        pos_clamped = np.minimum(pos, self._keys.size - 1)
        hit = self._keys[pos_clamped] == query
        out = np.where(hit, pos_clamped, -1).astype(np.int64)
        return out

    def require(self, keys: Iterable[KeyLike]) -> np.ndarray:
        """Indices of ``keys``; raises ``KeyError`` if any key is missing."""
        idx = self.lookup(keys)
        if np.any(idx < 0):
            missing = _normalise_keys(keys)[idx < 0][:5].tolist()
            raise KeyError(f"keys not present in table: {missing}")
        return idx

    def union(self, other: "StringTable") -> Tuple["StringTable", np.ndarray, np.ndarray]:
        """Union of two tables.

        Returns ``(merged, self_map, other_map)`` where the map arrays carry
        each table's old indices to positions within ``merged`` — exactly what
        Assoc-array addition needs to reindex its underlying matrices.
        """
        if other._keys.size == 0:
            return self, np.arange(len(self), dtype=np.int64), np.empty(0, dtype=np.int64)
        if self._keys.size == 0:
            return other, np.empty(0, dtype=np.int64), np.arange(len(other), dtype=np.int64)
        merged_keys = np.union1d(self._keys, other._keys)
        merged = StringTable._from_sorted_unique(merged_keys)
        self_map = np.searchsorted(merged_keys, self._keys).astype(np.int64)
        other_map = np.searchsorted(merged_keys, other._keys).astype(np.int64)
        return merged, self_map, other_map

    def select_range(self, start: KeyLike, stop: KeyLike) -> np.ndarray:
        """Indices of keys in the lexicographic interval ``[start, stop]`` (inclusive)."""
        start_s = _normalise_keys([start])[0]
        stop_s = _normalise_keys([stop])[0]
        lo = int(np.searchsorted(self._keys, start_s, side="left"))
        hi = int(np.searchsorted(self._keys, stop_s, side="right"))
        return np.arange(lo, hi, dtype=np.int64)

    def startswith(self, prefix: str) -> np.ndarray:
        """Indices of keys starting with ``prefix`` (D4M's ``'prefix*'`` query)."""
        lo = int(np.searchsorted(self._keys, prefix, side="left"))
        # The smallest string strictly greater than every prefixed key.
        sentinel = prefix + chr(0x10FFFF)
        hi = int(np.searchsorted(self._keys, sentinel, side="right"))
        return np.arange(lo, hi, dtype=np.int64)

    def take(self, indices: Sequence[int]) -> "StringTable":
        """A new table containing only the keys at ``indices`` (kept sorted)."""
        idx = np.asarray(indices, dtype=np.int64)
        return StringTable._from_sorted_unique(np.unique(self._keys[idx]))
