"""Blocking gateway client: binary update frames out, epoch-tagged reads back.

:class:`GatewayClient` mirrors the encoding decisions of the socket
transport's ingest path (packed-key binary frames, key-only all-ones
batches, pickled fallback for unpackable shapes/dtypes) using the matrix
parameters the HELLO acknowledgement advertises, so a client never needs the
matrix object — just the gateway address.

Updates are fire-and-forget; :meth:`sync` flushes the gateway's coalescer
and returns the count of updates *applied* for this connection (an ingest
error latched since the last sync raises :class:`GatewayError` instead —
the worker protocol's error-latching semantics, surfaced end to end).
Every snapshot read returns the value together with the partition-map epoch
it was served at (:attr:`last_epoch` keeps the most recent one).
"""

from __future__ import annotations

import os
import pickle
import socket
from typing import Optional

import numpy as np

from ..distributed.node import (
    F_CONTROL,
    F_DATA,
    F_DATA_KEYONLY,
    F_DATA_PICKLED,
    F_HELLO,
    F_HELLO_ACK,
    F_REPLY,
    parse_address,
    recv_frame,
    send_frame,
    send_pickled,
)
from ..distributed.ringbuf import ValueCodec
from ..graphblas import _kernels as K
from ..graphblas import coords
from ..graphblas.errors import InvalidIndex
from ..graphblas.types import lookup_dtype
from .gateway import F_SET_OP, GatewayError

__all__ = ["GatewayClient"]


class GatewayClient:
    """One connection to an :class:`~repro.service.IngestGateway`.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``(host, port)`` of a running gateway.
    client_id:
        Name reported in the HELLO (defaults to a pid-unique string).
    timeout:
        Socket timeout for connects and replies, seconds.
    """

    def __init__(self, address, *, client_id: Optional[str] = None, timeout: float = 60.0):
        self.client_id = client_id or f"client-{os.getpid()}-{id(self):x}"
        self._sock = socket.create_connection(parse_address(address), timeout=timeout)
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        try:
            send_pickled(self._sock, F_HELLO, {"client": self.client_id})
            frame = recv_frame(self._sock)
            if frame is None:
                raise GatewayError("gateway closed the connection during handshake")
            if frame[0] == F_REPLY:
                _status, value = pickle.loads(bytes(frame[1]))
                raise GatewayError(str(value))
            if frame[0] != F_HELLO_ACK:
                raise GatewayError(f"unexpected handshake frame type {frame[0]}")
            self.info = pickle.loads(bytes(frame[1]))
        except BaseException:
            self._sock.close()
            raise
        self._nrows = int(self.info["nrows"])
        self._ncols = int(self.info["ncols"])
        self._spec = coords.shape_split(self._nrows, self._ncols)
        np_type = lookup_dtype(self.info["dtype"]).np_type
        self._codec = ValueCodec(np_type) if np_type.itemsize <= 8 else None
        self._op = self.info["accum"]
        #: Partition-map epoch of the most recent reply.
        self.last_epoch = int(self.info.get("epoch", 0))
        #: Updates sent on this connection (acknowledged or not).
        self.sent_updates = 0

    # -- ingest ------------------------------------------------------------ #

    def update(self, rows, cols, values=1, *, op: Optional[str] = None) -> None:
        """Send one update batch (fire-and-forget; see :meth:`sync`)."""
        if self._closed:
            raise GatewayError("client is closed")
        if op is not None and op != self._op:
            send_frame(self._sock, F_SET_OP, op.encode("utf-8"))
            self._op = op
        if self._spec is not None and self._codec is not None:
            r = K.as_index_array(rows, "rows")
            c = K.as_index_array(cols, "cols")
            if r.size == 0:
                return
            if int(r.max()) >= self._nrows or int(c.max()) >= self._ncols:
                raise InvalidIndex(
                    f"coordinate batch exceeds the {self._nrows}x{self._ncols} shape"
                )
            keys = coords.pack(r, c, self._spec)
            scalar = np.isscalar(values) or (
                isinstance(values, np.ndarray) and values.ndim == 0
            )
            bits = self._codec.encode(values, 1 if scalar else keys.size)
            if self._codec.encodes_to_ones(values, bits):
                self._send(F_DATA_KEYONLY, keys.tobytes())
            else:
                if scalar:
                    bits = self._codec.encode(values, keys.size)
                self._send(F_DATA, keys.tobytes() + bits.tobytes())
            self.sent_updates += int(r.size)
            return
        r = K.as_index_array(rows, "rows")
        if r.size == 0:
            return
        self._send(
            F_DATA_PICKLED,
            pickle.dumps((rows, cols, values), protocol=pickle.HIGHEST_PROTOCOL),
        )
        self.sent_updates += int(r.size)

    def sync(self) -> dict:
        """Flush + acknowledge: ``{"acked": <applied updates>, "epoch": ...}``.

        Raises :class:`GatewayError` if any ingest error latched on this
        connection since the previous sync (the connection keeps serving).
        """
        value = self._request("sync")
        self.last_epoch = int(value["epoch"])
        return value

    # -- snapshot reads ---------------------------------------------------- #

    def stats(self) -> dict:
        """Degree/traffic summary served from the incremental trackers."""
        return self._read("stats")

    def top(self, k: int = 10) -> dict:
        """Top-K supernode report (sources/destinations with shares)."""
        return self._read("top", int(k))

    def get(self, row: int, col: int):
        """Point query; ``None`` for an unstored coordinate."""
        return self._read("get", (int(row), int(col)))

    def nnz(self) -> int:
        """Exact logical entry count."""
        return int(self._read("nnz"))

    def epoch(self) -> int:
        """Current partition-map epoch (bumps on every migration/failover)."""
        return int(self._read("epoch"))

    def pressure(self) -> float:
        """Worst transport watermark behind the gateway (0..1)."""
        return float(self._read("pressure"))

    def shard_loads(self, by: str = "nnz") -> list:
        return self._read("shard_loads", by)

    def imbalance(self, by: str = "nnz") -> float:
        return float(self._read("imbalance", by))

    def gateway_metrics(self) -> dict:
        """The gateway's observability counters."""
        return self._read("metrics")

    def rebalance_events(self) -> list:
        """Migrations the gateway's auto-rebalancer performed, in order."""
        return self._read("rebalance_events")

    def rejoin_events(self) -> list:
        """Replica rejoins the gateway's auto-rejoiner completed, in order."""
        return self._read("rejoin_events")

    def missing_replicas(self) -> int:
        """Replica slots currently retired behind the gateway (0 = full budget)."""
        return int(self._read("missing_replicas"))

    # -- plumbing ---------------------------------------------------------- #

    def _send(self, ftype: int, payload) -> None:
        try:
            send_frame(self._sock, ftype, payload)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise GatewayError(f"gateway connection lost: {exc}") from exc

    def _request(self, cmd: str, payload=None):
        if self._closed:
            raise GatewayError("client is closed")
        try:
            send_pickled(self._sock, F_CONTROL, (cmd, payload))
            frame = recv_frame(self._sock)
        except (BrokenPipeError, ConnectionResetError, socket.timeout, OSError) as exc:
            raise GatewayError(f"gateway connection lost: {exc}") from exc
        if frame is None:
            raise GatewayError("gateway closed the connection")
        ftype, data = frame
        if ftype != F_REPLY:
            raise GatewayError(f"unexpected reply frame type {ftype}")
        status, value = pickle.loads(bytes(data))
        if status != "ok":
            raise GatewayError(str(value))
        return value

    def _read(self, cmd: str, payload=None):
        value = self._request(cmd, payload)
        self.last_epoch = int(value["epoch"])
        return value["value"]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GatewayClient {self.client_id} epoch={self.last_epoch}>"
