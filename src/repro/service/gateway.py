"""The asyncio ingestion gateway: many client sockets in, one matrix behind.

Protocol
--------
The wire is the PR-7 node protocol (9-byte ``<BQ`` length-prefixed frames,
same frame types, same binary batch encodings), so everything the socket
transport learned about framing — FIFO byte streams as barriers, key-only
all-ones batches, pickled fallback for unpackable shapes — carries over:

* ``F_HELLO`` ``{"client": name}`` → ``F_HELLO_ACK`` with the matrix shape,
  dtype, accumulator and the gateway's coalescing bound, so the client can
  build the same packed-key codec the transports use.
* ``F_DATA`` / ``F_DATA_KEYONLY`` / ``F_DATA_PICKLED`` — update batches,
  fire-and-forget (acknowledged collectively by the next ``sync``).
* ``F_SET_OP`` (gateway extension) — switches the connection's combine
  operator; any switch flushes coalesced updates first (single-combiner
  rule), and an operator other than the matrix accumulator is refused.
* ``F_CONTROL`` ``(cmd, payload)`` → ``F_REPLY`` ``(status, value)`` —
  ``sync`` plus the snapshot reads (``stats``, ``top``, ``get``, ``nnz``,
  ...).  Every snapshot reply carries the partition-map epoch it was served
  at; because all matrix access happens on the event-loop thread, the value
  is exactly the state at that epoch (no torn reads across a migration).

Failure semantics mirror the worker protocol: an ingest error (bad range,
wrong operator, dead un-replicated backend) latches on the connection, is
reported by the next reply-bearing command, and the connection keeps
serving.  Acknowledgements count only updates that were actually applied
(with ``replicas >= 1`` the pool mirrors at submit, so acknowledged batches
survive a primary SIGKILL — the PR-6 zero-lost-updates guarantee, now
end-to-end).

Backpressure
------------
The gateway never buffers more than one coalescer window plus one in-flight
frame per connection.  Applying a batch first consults the matrix's
:meth:`ingest_pressure` (the transport watermarks): above ``high_watermark``
the route coroutine sleeps until pressure falls to ``low_watermark``.  While
it sleeps, its connection is not being read, so the kernel's TCP window
fills and the producing client blocks in ``send`` — per-client backpressure
with bounded gateway memory and no bookkeeping.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import threading
from typing import Dict, List, Optional, Set

import numpy as np

from ..distributed.node import (
    F_CONTROL,
    F_DATA,
    F_DATA_KEYONLY,
    F_DATA_PICKLED,
    F_HELLO,
    F_HELLO_ACK,
    F_REPLY,
    _HEADER,
    format_address,
)
from ..distributed.ringbuf import ValueCodec
from ..graphblas import _kernels as K
from ..graphblas import coords
from ..graphblas.errors import InvalidIndex
from ..graphblas.types import lookup_dtype
from .coalesce import BatchCoalescer, CoalescedBatch
from .rebalancer import AutoRebalancer
from .rejoin import AutoRejoiner

__all__ = ["F_SET_OP", "GatewayError", "IngestGateway"]

#: Gateway protocol extension: payload is the utf-8 operator name the
#: connection's subsequent data frames combine under.
F_SET_OP = 8


class GatewayError(RuntimeError):
    """A gateway-side failure surfaced to a client (handshake/sync/read)."""


class _Connection:
    """Per-client state the handler and the ack accounting share."""

    __slots__ = ("name", "op", "received", "acked", "error", "writer")

    def __init__(self, name: str, op: str, writer) -> None:
        self.name = name
        self.op = op
        self.received = 0  # updates parsed off this connection
        self.acked = 0  # updates applied to the matrix
        self.error: Optional[str] = None  # latched, reported at next reply
        self.writer = writer


class IngestGateway:
    """Serve one (sharded) hierarchical matrix to many socket clients.

    Parameters
    ----------
    matrix:
        A :class:`~repro.distributed.ShardedHierarchicalMatrix` (or a plain
        :class:`~repro.core.HierarchicalMatrix` for single-node serving).
    host, port:
        Listen address; ``port=0`` picks a free port (bound at construction,
        so :attr:`address` is known before :meth:`start`).
    coalesce_updates:
        Batch bound of the :class:`BatchCoalescer`.
    flush_interval:
        Seconds between background flushes of trickle traffic (small batches
        that never fill a coalescer window still land without a ``sync``).
    max_frame_bytes:
        Admission control: frames larger than this are refused and the
        connection closed.
    max_clients:
        Admission control: concurrent connections beyond this are refused at
        HELLO.
    high_watermark, low_watermark:
        Transport-pressure hysteresis band for pausing ingest (fractions of
        wire capacity; see module docstring).
    rebalancer:
        Optional :class:`AutoRebalancer` over the same matrix; the gateway
        starts its thread and marshals every policy step onto the event loop
        so the policy never races ingest.
    rejoiner:
        Optional :class:`AutoRejoiner` over the same matrix; hosted exactly
        like the rebalancer (own thread, steps dispatched onto the loop), it
        re-dials restarted node agents and resyncs retired replicas
        hands-off.
    own_matrix:
        Close the matrix when the gateway closes (the CLI passes True).
    """

    def __init__(
        self,
        matrix,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coalesce_updates: int = 8192,
        flush_interval: float = 0.05,
        max_frame_bytes: int = 1 << 26,
        max_clients: int = 4096,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
        backlog: int = 512,
        rebalancer: Optional[AutoRebalancer] = None,
        rejoiner: Optional[AutoRejoiner] = None,
        own_matrix: bool = False,
    ):
        if not (0.0 <= low_watermark <= high_watermark):
            raise ValueError(
                f"watermarks must satisfy 0 <= low <= high, got {low_watermark}/{high_watermark}"
            )
        self._matrix = matrix
        self._coalescer = BatchCoalescer(coalesce_updates)
        self._flush_interval = max(float(flush_interval), 0.001)
        self._max_frame_bytes = int(max_frame_bytes)
        self._max_clients = int(max_clients)
        self._high = float(high_watermark)
        self._low = float(low_watermark)
        self.rebalancer = rebalancer
        self.rejoiner = rejoiner
        self._own_matrix = bool(own_matrix)
        self._accum = matrix.accum.name
        self._spec = coords.shape_split(matrix.nrows, matrix.ncols)
        # The sharded matrix accepts the wire's packed keys straight through
        # (one pack per update across the whole gateway path); plain
        # hierarchical matrices and test fakes do not take the keyword.
        try:
            import inspect

            self._update_takes_keys = "keys" in inspect.signature(matrix.update).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._update_takes_keys = False
        np_type = matrix.dtype.np_type
        self._codec = ValueCodec(np_type) if np_type.itemsize <= 8 else None
        self._conns: Set[_Connection] = set()
        self._metrics: Dict[str, int] = {
            "clients_total": 0,
            "open_clients": 0,
            "received_updates": 0,
            "routed_updates": 0,
            "routed_batches": 0,
            "key_only_frames": 0,
            "backpressure_waits": 0,
            "max_buffered_updates": 0,
            "rejected_frames": 0,
            "errors": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._route_lock = asyncio.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._closing = False
        self._closed = False
        self._startup_error: Optional[BaseException] = None
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, int(port)))
        self._sock.listen(int(backlog))
        self._sock.setblocking(False)

    # -- lifecycle --------------------------------------------------------- #

    @property
    def address(self):
        """``(host, port)`` the gateway listens on (known before start)."""
        return self._sock.getsockname()

    @property
    def matrix(self):
        return self._matrix

    def start(self) -> "IngestGateway":
        """Start the event-loop thread (idempotent); returns self."""
        if self._thread is not None or self._closed:
            return self
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(started,), daemon=True, name="repro-gateway"
        )
        self._thread.start()
        if not started.wait(timeout=10) or self._startup_error is not None:
            err = self._startup_error or RuntimeError("gateway failed to start")
            self.close()
            raise err
        if self.rebalancer is not None:
            self.rebalancer.start(dispatch=self._dispatch)
        if self.rejoiner is not None:
            self.rejoiner.start(dispatch=self._dispatch)
        return self

    def _run(self, started: threading.Event) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main(started))
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
        finally:
            started.set()
            self._loop.close()

    async def _main(self, started: threading.Event) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle, sock=self._sock)
        flusher = asyncio.ensure_future(self._flush_loop())
        started.set()
        await self._stop_event.wait()
        # Shutdown: stop accepting, wake clients with EOF, drain everything
        # already accepted into the coalescer, then cancel stragglers.
        self._closing = True
        server.close()
        await server.wait_closed()
        flusher.cancel()
        for conn in list(self._conns):
            try:
                conn.writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass
        self._route_sync(self._coalescer.flush())
        current = asyncio.current_task()
        pending = [t for t in asyncio.all_tasks(self._loop) if t is not current]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def close(self) -> None:
        """Drain and stop the gateway; idempotent.

        Everything accepted into the coalescer before shutdown is applied to
        the matrix; connected clients observe a clean EOF.
        """
        if self._closed:
            return
        self._closed = True
        if self.rebalancer is not None:
            self.rebalancer.stop()
        if self.rejoiner is not None:
            self.rejoiner.stop()
        if self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=15)
        self._thread = None
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        if self._own_matrix:
            self._matrix.close()

    def __enter__(self) -> "IngestGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- cross-thread helpers ---------------------------------------------- #

    def _dispatch(self, fn):
        """Run ``fn()`` on the event-loop thread and return its result."""
        if self._loop is None or self._closed:
            raise RuntimeError("gateway is not running")

        async def call():
            return fn()

        return asyncio.run_coroutine_threadsafe(call(), self._loop).result(timeout=60)

    def rebalance_now(self) -> List:
        """Force one rebalancer step on the loop thread; returns its reports."""
        if self.rebalancer is None:
            return []
        return self._dispatch(lambda: self.rebalancer.step(force=True))

    def rejoin_now(self) -> List:
        """Force one rejoin step on the loop thread; returns its events."""
        if self.rejoiner is None:
            return []
        return self._dispatch(lambda: self.rejoiner.step(force=True))

    def metrics(self) -> Dict[str, int]:
        """Snapshot of the gateway counters (observability + tests)."""
        out = dict(self._metrics)
        out["buffered_updates"] = self._coalescer.pending_updates
        return out

    # -- ingest path (event-loop thread only) ------------------------------ #

    def _epoch(self) -> int:
        return int(getattr(self._matrix, "map_epoch", 0))

    def _pressure(self) -> float:
        fn = getattr(self._matrix, "ingest_pressure", None)
        return float(fn()) if fn is not None else 0.0

    async def _route(self, batches: List[CoalescedBatch]) -> None:
        # The lock serializes application order and, crucially, makes reads
        # and syncs (which route an empty flush) wait out any in-flight
        # batch parked in the backpressure sleep below — otherwise a sync
        # could ack while the flush loop still holds undelivered updates.
        async with self._route_lock:
            for batch in batches:
                if self._high > 0.0 and self._pressure() >= self._high:
                    self._metrics["backpressure_waits"] += 1
                    while not self._closing and self._pressure() > self._low:
                        await asyncio.sleep(self._flush_interval / 4)
                self._apply(batch)

    def _route_sync(self, batch: Optional[CoalescedBatch]) -> None:
        if batch is not None:
            self._apply(batch)

    def _apply(self, batch: CoalescedBatch) -> None:
        try:
            if batch.op != self._accum:
                raise GatewayError(
                    f"operator {batch.op!r} does not match the gateway "
                    f"accumulator {self._accum!r}"
                )
            if batch.keys is not None and self._update_takes_keys:
                self._matrix.update(batch.rows, batch.cols, batch.values, keys=batch.keys)
            else:
                self._matrix.update(batch.rows, batch.cols, batch.values)
        except Exception as exc:
            self._metrics["errors"] += 1
            detail = f"{type(exc).__name__}: {exc}"
            for conn, _count in batch.segments:
                if conn.error is None:
                    conn.error = detail
            return
        for conn, count in batch.segments:
            conn.acked += count
        self._metrics["routed_updates"] += batch.size
        self._metrics["routed_batches"] += 1

    async def _flush_loop(self) -> None:
        while True:
            await asyncio.sleep(self._flush_interval)
            batch = self._coalescer.flush()
            if batch is not None:
                await self._route([batch])

    # -- connection handling ----------------------------------------------- #

    async def _read_frame(self, reader: asyncio.StreamReader):
        try:
            header = await reader.readexactly(_HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        ftype, length = _HEADER.unpack(header)
        if length > self._max_frame_bytes:
            raise GatewayError(
                f"frame of {length} bytes exceeds the gateway bound "
                f"({self._max_frame_bytes})"
            )
        payload = await reader.readexactly(length) if length else b""
        return ftype, payload

    @staticmethod
    def _reply(writer: asyncio.StreamWriter, status: str, value) -> None:
        payload = pickle.dumps((status, value), protocol=pickle.HIGHEST_PROTOCOL)
        writer.write(_HEADER.pack(F_REPLY, len(payload)) + payload)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        conn: Optional[_Connection] = None
        try:
            frame = await self._read_frame(reader)
            if frame is None or frame[0] != F_HELLO:
                writer.close()
                return
            hello = pickle.loads(bytes(frame[1]))
            if len(self._conns) >= self._max_clients:
                self._reply(writer, "error", "gateway full: too many clients")
                await writer.drain()
                writer.close()
                return
            conn = _Connection(str(hello.get("client", "?")), self._accum, writer)
            self._conns.add(conn)
            self._metrics["clients_total"] += 1
            self._metrics["open_clients"] = len(self._conns)
            ack = pickle.dumps(
                {
                    "server": "repro-gateway",
                    "nrows": self._matrix.nrows,
                    "ncols": self._matrix.ncols,
                    "dtype": self._matrix.dtype.name,
                    "accum": self._accum,
                    "epoch": self._epoch(),
                    "coalesce_updates": self._coalescer.max_updates,
                    "max_frame_bytes": self._max_frame_bytes,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            writer.write(_HEADER.pack(F_HELLO_ACK, len(ack)) + ack)
            await writer.drain()
            while not self._closing:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                await self._dispatch_frame(conn, frame[0], frame[1], writer)
        except GatewayError as exc:
            # Admission refusal: tell the client why, then hang up.
            self._metrics["rejected_frames"] += 1
            try:
                self._reply(writer, "error", str(exc))
                await writer.drain()
            except (ConnectionResetError, OSError):
                pass
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        finally:
            if conn is not None:
                self._conns.discard(conn)
                self._metrics["open_clients"] = len(self._conns)
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    def _decode_data(self, ftype: int, payload: bytes):
        """Decode one data frame to ``(rows, cols, values, keys)``.

        Binary frames carry the coordinates as packed ``uint64`` keys under
        the matrix's own split — exactly what the router packs — so they are
        returned alongside the unpacked coordinates and ride the coalescer
        to the matrix, which then skips re-packing (pickled frames have no
        keys and return ``None``).
        """
        keys = None
        if ftype == F_DATA_PICKLED:
            rows, cols, values = pickle.loads(bytes(payload))
            r = K.as_index_array(rows, "rows")
            c = K.as_index_array(cols, "cols")
        else:
            if self._spec is None or self._codec is None:
                raise GatewayError(
                    "binary frames unsupported for this shape/dtype; "
                    "send pickled batches"
                )
            n = len(payload) // 8 if ftype == F_DATA_KEYONLY else len(payload) // 16
            keys = np.frombuffer(payload, np.uint64, count=n)
            r, c = coords.unpack(keys, self._spec)
            if ftype == F_DATA_KEYONLY:
                self._metrics["key_only_frames"] += 1
                values = 1
            else:
                values = self._codec.decode(np.frombuffer(payload, np.uint64, count=n, offset=8 * n))
        if r.size and (int(r.max()) >= self._matrix.nrows or int(c.max()) >= self._matrix.ncols):
            raise InvalidIndex(
                f"coordinate batch exceeds the "
                f"{self._matrix.nrows}x{self._matrix.ncols} shape"
            )
        return r, c, values, keys

    async def _dispatch_frame(self, conn: _Connection, ftype: int, payload: bytes, writer) -> None:
        if ftype in (F_DATA, F_DATA_KEYONLY, F_DATA_PICKLED):
            if conn.error is not None:
                return  # latched: drop until the client observes the error
            try:
                r, c, values, keys = self._decode_data(ftype, payload)
            except Exception as exc:
                self._metrics["rejected_frames"] += 1
                conn.error = f"{type(exc).__name__}: {exc}"
                return
            conn.received += r.size
            self._metrics["received_updates"] += r.size
            emitted = self._coalescer.add(conn, r, c, values, op=conn.op, keys=keys)
            buffered = self._coalescer.pending_updates
            if buffered > self._metrics["max_buffered_updates"]:
                self._metrics["max_buffered_updates"] = buffered
            if emitted:
                await self._route(emitted)
        elif ftype == F_SET_OP:
            op = bytes(payload).decode("utf-8")
            if op != conn.op:
                # Single-combiner rule, end to end: flush before switching.
                await self._route([b] if (b := self._coalescer.flush()) else [])
                conn.op = op
            if op != self._accum and conn.error is None:
                conn.error = (
                    f"operator {op!r} does not match the gateway accumulator "
                    f"{self._accum!r} (single-combiner rule)"
                )
        elif ftype == F_CONTROL:
            cmd, arg = pickle.loads(bytes(payload))
            await self._control(conn, cmd, arg, writer)
        # Unknown frame types are ignored (forward compatibility).

    async def _control(self, conn: _Connection, cmd: str, arg, writer) -> None:
        # Reads flush first so a client always reads its own writes.
        try:
            if cmd == "sync":
                await self._route([b] if (b := self._coalescer.flush()) else [])
                if conn.error is not None:
                    error, conn.error = conn.error, None
                    self._reply(writer, "error", error)
                else:
                    self._reply(writer, "ok", {"acked": conn.acked, "epoch": self._epoch()})
                await writer.drain()
                return
            value = await self._read_command(cmd, arg)
        except GatewayError as exc:
            self._reply(writer, "error", str(exc))
            await writer.drain()
            return
        except Exception as exc:
            self._reply(writer, "error", f"{type(exc).__name__}: {exc}")
            await writer.drain()
            return
        self._reply(writer, "ok", {"epoch": self._epoch(), "value": value})
        await writer.drain()

    async def _read_command(self, cmd: str, arg):
        from ..analytics import degree_summary, supernode_report

        await self._route([b] if (b := self._coalescer.flush()) else [])
        if cmd == "stats":
            return degree_summary(self._matrix)
        if cmd == "top":
            return supernode_report(self._matrix, int(arg or 10))
        if cmd == "get":
            row, col = arg
            return self._matrix.get(int(row), int(col))
        if cmd == "nnz":
            return int(self._matrix.nvals)
        if cmd == "epoch":
            return self._epoch()
        if cmd == "pressure":
            return self._pressure()
        if cmd == "shard_loads":
            return self._matrix.shard_loads(arg or "nnz")
        if cmd == "imbalance":
            return self._matrix.imbalance(arg or "nnz")
        if cmd == "metrics":
            return self.metrics()
        if cmd == "rebalance_events":
            events = self.rebalancer.events if self.rebalancer is not None else []
            return [
                {
                    "epoch": e.epoch,
                    "source": e.source,
                    "dest": e.dest,
                    "moved": e.moved,
                    "imbalance_before": e.imbalance_before,
                }
                for e in events
            ]
        if cmd == "rejoin_events":
            return list(self.rejoiner.events) if self.rejoiner is not None else []
        if cmd == "missing_replicas":
            fn = getattr(self._matrix, "missing_replicas", None)
            return int(fn()) if fn is not None else 0
        raise GatewayError(f"unknown gateway command {cmd!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<IngestGateway {format_address(self.address)} clients={len(self._conns)}>"
