"""Service layer: the always-on front door over the sharded engine.

The library below this package is caller-driven: one thread owns a
:class:`~repro.distributed.ShardedHierarchicalMatrix`, streams batches into
it, and decides when to poll :meth:`imbalance` and migrate slabs.  The paper's
deployment story — a traffic matrix absorbing updates from millions of
independent sensors while dashboards read stats continuously — needs the
opposite shape: many small writers, occasional readers, nobody in charge.
This package provides it as a composition of already-tested mechanisms:

* :class:`IngestGateway` — an ``asyncio`` server speaking the PR-7
  length-prefixed socket frames.  Each client connection contributes small
  update batches; a :class:`BatchCoalescer` regroups them into router-sized
  batches, admission control rejects malformed traffic at the door, and
  backpressure derived from the transport watermarks
  (:meth:`ShardTransport.ingest_watermark
  <repro.distributed.transport.ShardTransport.ingest_watermark>`) pauses
  socket reads — filling TCP windows — instead of buffering unboundedly.
* :class:`GatewayClient` — the blocking client: binary update frames in,
  epoch-tagged snapshot reads (stats / top-K / point lookups) back.
* :class:`AutoRebalancer` — the hands-off placement policy: trigger/settle
  hysteresis around :meth:`imbalance`, cool-down after migrations, and
  nnz- or traffic-weighted slab placement, replacing the polling loop that
  previously lived in ``cli.py``.
* :class:`AutoRejoiner` — the hands-off availability policy: detects
  replica slots retired by failovers or node kills, re-dials the restarted
  agents with exponential back-off, and drives the checkpoint resync until
  every shard holds its full mirror set again.

All matrix access happens on the gateway's event-loop thread (the rebalancer
and rejoiner threads dispatch their policy steps onto the loop), so snapshot
reads are trivially consistent with the epoch they report and no lock ever
guards the hierarchy.
"""

from .coalesce import BatchCoalescer, CoalescedBatch
from .rebalancer import AutoRebalancer
from .rejoin import AutoRejoiner
from .gateway import GatewayError, IngestGateway
from .client import GatewayClient

__all__ = [
    "AutoRebalancer",
    "AutoRejoiner",
    "BatchCoalescer",
    "CoalescedBatch",
    "GatewayClient",
    "GatewayError",
    "IngestGateway",
]
