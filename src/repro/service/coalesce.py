"""Coalescing of small per-client update batches into router-sized batches.

Gateway clients send whatever batch sizes their sensors produce — often a
handful of updates at a time — while the sharded router amortises its packing
and per-shard masking over large batches.  :class:`BatchCoalescer` bridges the
two: it buffers incoming batches in per-client queues and emits
:class:`CoalescedBatch` objects of bounded size, carrying per-client segment
counts so the gateway can acknowledge exactly the updates that were applied.

Invariants (property-tested in ``tests/service/test_coalesce.py``):

* **Order**: within one client, updates appear in emitted batches in the
  order they arrived (a client's batches are only ever split, never
  reordered).
* **Fairness**: emission round-robins across the clients that have buffered
  updates, so one hot client filling every window cannot starve a slow one —
  a client with a pending chunk is served within a bounded number of emitted
  windows regardless of how fast the other clients produce.
* **Bound**: no emitted batch exceeds ``max_updates`` — oversized incoming
  batches are split — and after every :meth:`add` fewer than ``max_updates``
  updates remain buffered.
* **Single combiner**: a batch mixes no operators.  An operator switch
  flushes the buffer first, mirroring the pending-buffer rule of
  :meth:`Matrix._append_pending <repro.graphblas.matrix.Matrix>`.

All-ones batches stay symbolic (``values`` is the scalar ``1``) so the
gateway's ingest path preserves the key-only wire optimisation end to end.
When the caller already holds the packed ``uint64`` coordinate keys (the
gateway decodes them straight off the wire), :meth:`add` accepts them and
emitted batches carry the concatenation — the router can then skip re-packing
entirely (one pack per update across the whole gateway path, not two).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..graphblas import _kernels as K

__all__ = ["BatchCoalescer", "CoalescedBatch"]

#: One buffered slice of a client batch: rows, cols, values (``None`` for the
#: symbolic all-ones case), packed keys (``None`` when the caller had none).
_Chunk = Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]


@dataclass
class CoalescedBatch:
    """One router-ready batch regrouped from per-client updates."""

    rows: np.ndarray
    cols: np.ndarray
    #: Per-update values, or the scalar ``1`` when every contributing chunk
    #: was an all-ones (key-only) batch.
    values: object
    #: Combine operator name shared by every update in the batch.
    op: str
    #: ``(client, count)`` in emission order; counts sum to :attr:`size`.
    segments: List[Tuple[object, int]]
    #: Packed ``uint64`` coordinate keys aligned with ``rows``/``cols`` when
    #: every contributing chunk carried them, else ``None``.
    keys: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return int(self.rows.size)


class BatchCoalescer:
    """Accumulate per-client updates; emit bounded, single-operator batches.

    Parameters
    ----------
    max_updates:
        Hard per-batch size bound (also the buffering bound: at most
        ``max_updates - 1`` updates are ever held between calls).
    """

    def __init__(self, max_updates: int = 8192):
        self.max_updates = max(int(max_updates), 1)
        # client -> FIFO of that client's pending chunks; dict order is the
        # round-robin rotation (served client moves to the end).
        self._queues: "OrderedDict[object, Deque[_Chunk]]" = OrderedDict()
        self._count = 0
        self._op: Optional[str] = None

    @property
    def pending_updates(self) -> int:
        """Updates currently buffered (always ``< max_updates`` after add)."""
        return self._count

    @property
    def pending_op(self) -> Optional[str]:
        """Operator of the buffered updates (``None`` when empty)."""
        return self._op if self._count else None

    def add(
        self, client, rows, cols, values=1, *, op: str = "plus", keys=None
    ) -> List[CoalescedBatch]:
        """Buffer one client batch; return every batch that became emittable.

        A different ``op`` than the buffered one flushes the buffer first
        (single-combiner rule); then full ``max_updates`` batches are peeled
        off while the buffer holds at least that many updates.  ``keys`` may
        carry the coordinates already packed (aligned with ``rows``); emitted
        batches propagate them when every contributing chunk had them.
        """
        out: List[CoalescedBatch] = []
        if self._count and self._op is not None and op != self._op:
            out.append(self._emit(self._count))
        self._op = op
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if r.size != c.size:
            raise ValueError(f"rows/cols length mismatch: {r.size} != {c.size}")
        if r.size == 0:
            return out
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            # Scalar 1 stays symbolic (key-only wire); other scalars broadcast.
            v = None if values == 1 else np.full(r.size, values, dtype=np.float64)
        else:
            v = np.asarray(values)
            if v.size != r.size:
                raise ValueError(f"values length mismatch: {v.size} != {r.size}")
        k = None
        if keys is not None:
            k = np.asarray(keys, dtype=np.uint64)
            if k.size != r.size:
                raise ValueError(f"keys length mismatch: {k.size} != {r.size}")
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
        queue.append((r, c, v, k))
        self._count += r.size
        while self._count >= self.max_updates:
            out.append(self._emit(self.max_updates))
        return out

    def flush(self) -> Optional[CoalescedBatch]:
        """Emit whatever is buffered (or ``None``); empties the buffer."""
        if self._count == 0:
            return None
        return self._emit(self._count)

    def _emit(self, limit: int) -> CoalescedBatch:
        """Drain up to ``limit`` updates, round-robining across clients.

        Each turn takes one chunk (or the window's remainder of one) from the
        client at the head of the rotation, then moves that client to the
        tail — so a slow client's chunk is reached after at most one chunk
        from every other client, no matter how much the others have queued.
        """
        take: List[_Chunk] = []
        segments: List[Tuple[object, int]] = []
        remaining = limit
        while remaining > 0 and self._queues:
            client, queue = next(iter(self._queues.items()))
            r, c, v, k = queue[0]
            if r.size <= remaining:
                queue.popleft()
                take.append((r, c, v, k))
                taken = int(r.size)
            else:
                take.append(
                    (
                        r[:remaining],
                        c[:remaining],
                        None if v is None else v[:remaining],
                        None if k is None else k[:remaining],
                    )
                )
                queue[0] = (
                    r[remaining:],
                    c[remaining:],
                    None if v is None else v[remaining:],
                    None if k is None else k[remaining:],
                )
                taken = remaining
            if segments and segments[-1][0] == client:
                segments[-1] = (client, segments[-1][1] + taken)
            else:
                segments.append((client, taken))
            remaining -= taken
            # Rotate: the served client yields the head to the next client.
            del self._queues[client]
            if queue:
                self._queues[client] = queue
        emitted = limit - remaining
        self._count -= emitted
        if len(take) == 1:
            rows, cols, vals, keys = take[0]
        else:
            rows = np.concatenate([t[0] for t in take])
            cols = np.concatenate([t[1] for t in take])
            vals = None
            if any(t[2] is not None for t in take):
                vals = np.concatenate(
                    [np.ones(t[0].size, dtype=np.float64) if t[2] is None else t[2] for t in take]
                )
            keys = None
            if all(t[3] is not None for t in take):
                keys = np.concatenate([t[3] for t in take])
        values = 1 if vals is None else vals
        return CoalescedBatch(
            rows=rows,
            cols=cols,
            values=values,
            op=self._op or "plus",
            segments=segments,
            keys=keys,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BatchCoalescer pending={self._count}/{self.max_updates} op={self._op!r}>"
