"""Coalescing of small per-client update batches into router-sized batches.

Gateway clients send whatever batch sizes their sensors produce — often a
handful of updates at a time — while the sharded router amortises its packing
and per-shard masking over large batches.  :class:`BatchCoalescer` bridges the
two: it buffers incoming per-client batches in arrival order and emits
:class:`CoalescedBatch` objects of bounded size, carrying per-client segment
counts so the gateway can acknowledge exactly the updates that were applied.

Invariants (property-tested in ``tests/service/test_coalesce.py``):

* **Order**: within one client, updates appear in emitted batches in the
  order they arrived (batches are only ever split, never reordered), and the
  global emission order respects arrival order too.
* **Bound**: no emitted batch exceeds ``max_updates`` — oversized incoming
  batches are split — and after every :meth:`add` fewer than ``max_updates``
  updates remain buffered.
* **Single combiner**: a batch mixes no operators.  An operator switch
  flushes the buffer first, mirroring the pending-buffer rule of
  :meth:`Matrix._append_pending <repro.graphblas.matrix.Matrix>`.

All-ones batches stay symbolic (``values`` is the scalar ``1``) so the
gateway's ingest path preserves the key-only wire optimisation end to end.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..graphblas import _kernels as K

__all__ = ["BatchCoalescer", "CoalescedBatch"]


@dataclass
class CoalescedBatch:
    """One router-ready batch regrouped from per-client updates."""

    rows: np.ndarray
    cols: np.ndarray
    #: Per-update values, or the scalar ``1`` when every contributing chunk
    #: was an all-ones (key-only) batch.
    values: object
    #: Combine operator name shared by every update in the batch.
    op: str
    #: ``(client, count)`` in arrival order; counts sum to :attr:`size`.
    segments: List[Tuple[object, int]]

    @property
    def size(self) -> int:
        return int(self.rows.size)


class BatchCoalescer:
    """Accumulate per-client updates; emit bounded, single-operator batches.

    Parameters
    ----------
    max_updates:
        Hard per-batch size bound (also the buffering bound: at most
        ``max_updates - 1`` updates are ever held between calls).
    """

    def __init__(self, max_updates: int = 8192):
        self.max_updates = max(int(max_updates), 1)
        self._chunks: Deque[Tuple[object, np.ndarray, np.ndarray, Optional[np.ndarray]]] = deque()
        self._count = 0
        self._op: Optional[str] = None

    @property
    def pending_updates(self) -> int:
        """Updates currently buffered (always ``< max_updates`` after add)."""
        return self._count

    @property
    def pending_op(self) -> Optional[str]:
        """Operator of the buffered updates (``None`` when empty)."""
        return self._op if self._count else None

    def add(self, client, rows, cols, values=1, *, op: str = "plus") -> List[CoalescedBatch]:
        """Buffer one client batch; return every batch that became emittable.

        A different ``op`` than the buffered one flushes the buffer first
        (single-combiner rule); then full ``max_updates`` batches are peeled
        off while the buffer holds at least that many updates.
        """
        out: List[CoalescedBatch] = []
        if self._count and self._op is not None and op != self._op:
            out.append(self._emit(self._count))
        self._op = op
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if r.size != c.size:
            raise ValueError(f"rows/cols length mismatch: {r.size} != {c.size}")
        if r.size == 0:
            return out
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            # Scalar 1 stays symbolic (key-only wire); other scalars broadcast.
            v = None if values == 1 else np.full(r.size, values, dtype=np.float64)
        else:
            v = np.asarray(values)
            if v.size != r.size:
                raise ValueError(f"values length mismatch: {v.size} != {r.size}")
        self._chunks.append((client, r, c, v))
        self._count += r.size
        while self._count >= self.max_updates:
            out.append(self._emit(self.max_updates))
        return out

    def flush(self) -> Optional[CoalescedBatch]:
        """Emit whatever is buffered (or ``None``); empties the buffer."""
        if self._count == 0:
            return None
        return self._emit(self._count)

    def _emit(self, limit: int) -> CoalescedBatch:
        take: List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = []
        segments: List[Tuple[object, int]] = []
        remaining = limit
        while remaining > 0 and self._chunks:
            client, r, c, v = self._chunks[0]
            if r.size <= remaining:
                self._chunks.popleft()
                take.append((r, c, v))
                segments.append((client, int(r.size)))
                remaining -= r.size
            else:
                take.append((r[:remaining], c[:remaining], None if v is None else v[:remaining]))
                segments.append((client, remaining))
                self._chunks[0] = (
                    client,
                    r[remaining:],
                    c[remaining:],
                    None if v is None else v[remaining:],
                )
                remaining = 0
        emitted = limit - remaining
        self._count -= emitted
        if len(take) == 1:
            rows, cols, vals = take[0]
        else:
            rows = np.concatenate([t[0] for t in take])
            cols = np.concatenate([t[1] for t in take])
            vals = None
            if any(t[2] is not None for t in take):
                vals = np.concatenate(
                    [np.ones(t[0].size, dtype=np.float64) if t[2] is None else t[2] for t in take]
                )
        values = 1 if vals is None else vals
        return CoalescedBatch(rows=rows, cols=cols, values=values, op=self._op or "plus", segments=segments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BatchCoalescer pending={self._count}/{self.max_updates} op={self._op!r}>"
