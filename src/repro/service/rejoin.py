"""Hands-off replica rejoin: detect retired mirrors, re-dial, resync, repeat.

PR 7 made a failover survivable (`promote` + mirrored ingest) and made the
recovery *possible* (`resync_replicas()` re-mirrors a respawned slot from a
checkpoint of its primary), but left the recovery caller-driven: after a node
restart somebody had to notice the spent failure budget and call
``resync_replicas()`` by hand — and keep calling it until the restarted
``repro-node`` agent actually answered.  :class:`AutoRejoiner` owns that loop:

* **Cheap detection** — each check reads
  :meth:`~repro.distributed.ShardedHierarchicalMatrix.missing_replicas`,
  a pure bookkeeping lookup that never touches the wire, so an idle healthy
  cluster pays nothing.
* **Re-dial with back-off** — a retired slot is respawned through the
  transport (the socket wire re-dials the slot's *original* endpoint, where
  a restarted agent rebinds thanks to ``SO_REUSEADDR``); while the agent is
  still down the attempt fails, and the check interval doubles up to
  ``max_backoff`` times.  Any successful rejoin — or a fully healthy
  observation — re-arms the interval.
* **Checkpoint catch-up, hands-off** — each rejoin drives
  :meth:`~repro.distributed.ShardedHierarchicalMatrix.resync_replica`:
  the fresh worker restores the primary's checkpoint bytes over the reply
  channel and re-registers as a mirror, restoring the failure budget while
  the stream keeps flowing.

The supervisor is shaped exactly like :class:`~repro.service.AutoRebalancer`
and composes the same three ways: :meth:`step`/:meth:`maybe_step` for inline
driving on any clock (``repro-shard --auto-rejoin`` uses batch-count time),
:meth:`start` for a daemon thread, and ``start(dispatch=...)`` for marshaling
onto the thread that owns the matrix (the
:class:`~repro.service.IngestGateway` passes its event-loop dispatcher, the
same way it hosts the rebalancer).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..graphblas.errors import InvalidValue

__all__ = ["AutoRejoiner"]


class AutoRejoiner:
    """Background replica-rejoin supervisor over a sharded matrix.

    Parameters
    ----------
    matrix:
        A :class:`~repro.distributed.ShardedHierarchicalMatrix` (anything
        exposing ``nshards``, ``missing_replicas()`` and
        ``resync_replica(shard)``).
    interval:
        Seconds between budget checks while healthy (and the base unit of
        the failure back-off).
    max_backoff:
        Cap on the failed-attempt interval multiplier: while an agent stays
        down the check interval grows ``interval * 2^k`` up to
        ``interval * max_backoff``, bounding connect-refused churn.
    clock:
        Injectable monotonic clock (tests drive the back-off schedule
        deterministically; the CLI drives it in batch-count time).
    """

    def __init__(
        self,
        matrix,
        *,
        interval: float = 0.5,
        max_backoff: int = 16,
        clock: Callable[[], float] = time.monotonic,
    ):
        if float(interval) < 0.0:
            raise InvalidValue(f"interval must be >= 0, got {interval}")
        self._matrix = matrix
        self._interval = float(interval)
        self._max_backoff = max(int(max_backoff), 1)
        self._clock = clock
        #: One ``{"shard", "slot", "at"}`` dict per successful rejoin, in order.
        self.events: List[dict] = []
        #: Budget checks performed / checks that found retired slots but
        #: could not restore any (the agent was still down).
        self.checks = 0
        self.failed_attempts = 0
        #: Last exception raised by a rejoin attempt (or a threaded step).
        self.last_error: Optional[BaseException] = None
        self._backoff = 1
        self._next_check = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def interval(self) -> float:
        return self._interval

    def step(self, now: Optional[float] = None, *, force: bool = False) -> List[dict]:
        """One detect-and-rejoin attempt; returns the rejoins it completed.

        Walks every shard, resyncing retired slots until each shard either
        holds its full mirror set or an attempt fails (agent still down —
        recorded in :attr:`last_error`, retried after back-off).  ``force``
        is accepted for interface symmetry with the rebalancer; the step
        never has a trigger gate to skip, the cheap
        ``missing_replicas() == 0`` check short-circuits instead.
        """
        now = self._clock() if now is None else now
        self.checks += 1
        events: List[dict] = []
        failed = None
        if self._matrix.missing_replicas() > 0 or force:
            for shard in range(self._matrix.nshards):
                while True:
                    try:
                        slot = self._matrix.resync_replica(shard)
                    except Exception as exc:
                        # The slot's endpoint refused (agent not back yet) or
                        # the restore failed; keep the slot retired and move
                        # on — other shards' agents may already be up.
                        failed = exc
                        break
                    if slot is None:
                        break
                    events.append({"shard": shard, "slot": int(slot), "at": now})
        if failed is not None:
            self.last_error = failed
        if events or failed is None:
            # Progress, or nothing left to do: re-arm the base interval.
            self._backoff = 1
        else:
            self.failed_attempts += 1
            self._backoff = min(self._backoff * 2, self._max_backoff)
        self._next_check = now + self._interval * self._backoff
        self.events.extend(events)
        return events

    def maybe_step(self, now: Optional[float] = None) -> List[dict]:
        """Rate-limited :meth:`step`: no-op while inside interval/back-off."""
        now = self._clock() if now is None else now
        if now < self._next_check:
            return []
        return self.step(now)

    # -- threaded mode ----------------------------------------------------- #

    def start(
        self, dispatch: Optional[Callable[[Callable[[], List]], List]] = None
    ) -> "AutoRejoiner":
        """Run the supervisor on a daemon thread until :meth:`stop`.

        ``dispatch(fn)`` must execute ``fn()`` on the thread that owns the
        matrix and return its result; without it the steps run on the
        supervisor thread itself, which is only safe when nothing else
        touches the matrix concurrently.
        """
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, args=(dispatch,), daemon=True, name="repro-auto-rejoiner"
        )
        self._thread.start()
        return self

    def _run(self, dispatch) -> None:
        tick = min(self._interval, 0.05) if self._interval > 0 else 0.05
        while not self._stop.wait(tick):
            try:
                if dispatch is not None:
                    dispatch(self.maybe_step)
                else:
                    self.maybe_step()
            except Exception as exc:
                # A dispatcher shutting down (or a degraded pool) must not
                # kill the service; record, back off, retry.
                self.last_error = exc
                self._backoff = min(self._backoff * 2, self._max_backoff)
                self._next_check = self._clock() + max(self._interval, 0.05) * self._backoff

    def stop(self) -> None:
        """Stop the supervisor thread (idempotent; safe if never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AutoRejoiner interval={self._interval} backoff={self._backoff} "
            f"rejoined={len(self.events)}>"
        )
