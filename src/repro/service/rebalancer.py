"""Hands-off rebalance policy: hysteresis, cool-down, weighted placement.

PR 5 gave the engine live slab migration (:meth:`ShardedHierarchicalMatrix.
rebalance`) but left *when to migrate* to the caller — ``repro-shard
--rebalance auto`` polled :meth:`imbalance` on a hand-rolled schedule inside
its stream loop.  :class:`AutoRebalancer` owns that policy instead:

* **Trigger/settle hysteresis** — migrations start only once
  ``imbalance() > trigger`` and then continue until it drops to ``settle``
  (< trigger), so the policy neither thrashes around one threshold nor stops
  half-balanced.
* **Cool-down** — after a migration burst the policy sleeps ``cooldown``
  seconds before re-measuring, letting the re-routed stream settle before it
  is judged again.
* **Fruitless-check back-off** — a triggered check that moved nothing (e.g.
  one hot shard that owns a single slab) doubles the check interval up to
  ``max_backoff`` times, bounding measurement overhead on streams the policy
  cannot help; any successful migration or settled measurement re-arms it.
* **Weighted placement** — ``by="nnz"`` balances stored entries (memory),
  ``by="traffic"`` balances observed update weight (load); both are served
  by the shards' incremental trackers without materialising.

The policy object is deliberately passive: :meth:`step` performs one
measure-and-maybe-migrate decision and :meth:`maybe_step` rate-limits it, so
a stream loop can drive it inline (``cli.py`` does).  :meth:`start` runs it
as a background thread; because the matrix is not thread-safe, the thread
accepts a ``dispatch`` callable that marshals each step onto the thread that
owns the matrix — the :class:`~repro.service.IngestGateway` passes its
event-loop dispatcher.  Only use the threaded mode without ``dispatch`` when
nothing else touches the matrix concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..graphblas.errors import InvalidValue

__all__ = ["AutoRebalancer"]


class AutoRebalancer:
    """Background trigger/settle rebalance policy over a sharded matrix.

    Parameters
    ----------
    matrix:
        A :class:`~repro.distributed.ShardedHierarchicalMatrix`.
    by:
        Load metric driving placement: ``"nnz"`` or ``"traffic"``.
    trigger:
        Imbalance (``max/mean``, ≥ 1) above which migration starts.
    settle:
        Imbalance at which migration stops (default: halfway between 1 and
        ``trigger``).  Must satisfy ``1 <= settle <= trigger``.
    fraction:
        Fraction of the source/dest load difference each migration moves.
    interval:
        Seconds between imbalance checks when balanced.
    cooldown:
        Seconds to wait after a migration burst before re-measuring.
    max_migrations_per_step:
        Bound on migrations per policy step (each moves ``fraction`` of the
        remaining gap, so a handful converges).
    max_backoff:
        Cap on the fruitless-check interval multiplier.
    clock:
        Injectable monotonic clock (tests drive hysteresis deterministically).
    """

    def __init__(
        self,
        matrix,
        *,
        by: str = "nnz",
        trigger: float = 1.5,
        settle: Optional[float] = None,
        fraction: float = 0.5,
        interval: float = 0.25,
        cooldown: float = 1.0,
        max_migrations_per_step: int = 4,
        max_backoff: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        if by not in ("nnz", "traffic"):
            raise InvalidValue(f"load metric must be 'nnz' or 'traffic', got {by!r}")
        trigger = float(trigger)
        if trigger < 1.0:
            raise InvalidValue(f"trigger must be >= 1.0, got {trigger}")
        settle = float(settle) if settle is not None else 1.0 + (trigger - 1.0) / 2.0
        if not (1.0 <= settle <= trigger):
            raise InvalidValue(f"settle must lie in [1.0, trigger], got {settle}")
        self._matrix = matrix
        self._by = by
        self._trigger = trigger
        self._settle = settle
        self._fraction = float(fraction)
        self._interval = max(float(interval), 0.0)
        self._cooldown = max(float(cooldown), 0.0)
        self._max_migrations = max(int(max_migrations_per_step), 1)
        self._max_backoff = max(int(max_backoff), 1)
        self._clock = clock
        #: Every migration the policy performed, in order (RebalanceReport).
        self.events: List = []
        #: Imbalance checks that triggered / migrated nothing (diagnostics).
        self.checks = 0
        self.fruitless_checks = 0
        #: Last exception raised by a threaded policy step, if any.
        self.last_error: Optional[BaseException] = None
        self._backoff = 1
        self._next_check = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- policy ------------------------------------------------------------ #

    @property
    def by(self) -> str:
        return self._by

    @property
    def trigger(self) -> float:
        return self._trigger

    @property
    def settle(self) -> float:
        return self._settle

    def step(self, now: Optional[float] = None, *, force: bool = False) -> List:
        """One measure-and-maybe-migrate decision; returns new reports.

        ``force=True`` skips the trigger gate (still migrating only down to
        ``settle``) — used by tests and the gateway's ``rebalance_now``.
        """
        now = self._clock() if now is None else now
        self.checks += 1
        reports: List = []
        imbalance = self._matrix.imbalance(self._by)
        if force or imbalance > self._trigger:
            while len(reports) < self._max_migrations:
                report = self._matrix.rebalance(
                    by=self._by, fraction=self._fraction, threshold=self._settle
                )
                if report is None:
                    break
                reports.append(report)
        if reports:
            self._backoff = 1
            self._next_check = now + max(self._cooldown, self._interval)
        elif imbalance > self._trigger:
            self.fruitless_checks += 1
            self._backoff = min(self._backoff * 2, self._max_backoff)
            self._next_check = now + self._interval * self._backoff
        else:
            self._backoff = 1
            self._next_check = now + self._interval
        self.events.extend(reports)
        return reports

    def maybe_step(self, now: Optional[float] = None) -> List:
        """Rate-limited :meth:`step`: no-op while inside interval/cool-down."""
        now = self._clock() if now is None else now
        if now < self._next_check:
            return []
        return self.step(now)

    # -- threaded mode ----------------------------------------------------- #

    def start(self, dispatch: Optional[Callable[[Callable[[], List]], List]] = None) -> "AutoRebalancer":
        """Run the policy on a daemon thread until :meth:`stop`.

        ``dispatch(fn)`` must execute ``fn()`` on the thread that owns the
        matrix and return its result; without it the steps run on the policy
        thread itself, which is only safe when nothing else touches the
        matrix concurrently.
        """
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, args=(dispatch,), daemon=True, name="repro-auto-rebalancer"
        )
        self._thread.start()
        return self

    def _run(self, dispatch) -> None:
        tick = min(self._interval, 0.05) if self._interval > 0 else 0.05
        while not self._stop.wait(tick):
            try:
                if dispatch is not None:
                    dispatch(self.maybe_step)
                else:
                    self.maybe_step()
            except Exception as exc:
                # A degraded pool (or a dispatcher shutting down) must not
                # kill the service; record, back off, retry.
                self.last_error = exc
                self._backoff = min(self._backoff * 2, self._max_backoff)
                self._next_check = self._clock() + max(self._interval, 0.05) * self._backoff

    def stop(self) -> None:
        """Stop the policy thread (idempotent; safe if never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AutoRebalancer by={self._by} trigger={self._trigger} "
            f"settle={self._settle} events={len(self.events)}>"
        )
