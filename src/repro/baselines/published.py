"""Published ingest-rate reference series for the Figure 2 comparison.

Figure 2 of the paper plots the hierarchical GraphBLAS update rate against
*previously published* results: Hierarchical D4M [19]/[24], Accumulo D4M [25],
SciDB D4M [26], Accumulo [27], the Oracle TPC-C benchmark, and CrateDB [28].
Those systems ran on clusters we cannot reproduce offline, so — per the
substitution policy in DESIGN.md — this module carries the published numbers
themselves (digitised from the figure and the cited papers, to the precision
the log-log plot supports) as reference series.  The benchmark harness prints
them alongside the rates measured for our own implementations so the final
table has the same rows as the paper's figure.

All rates are in updates (inserts) per second; server counts are the x-axis of
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["PublishedSeries", "published_series", "PAPER_HEADLINE_RATE", "PAPER_HEADLINE_SERVERS"]

#: The abstract's headline aggregate rate (updates per second).
PAPER_HEADLINE_RATE = 75_000_000_000
#: Number of server nodes at which the headline rate was achieved.
PAPER_HEADLINE_SERVERS = 1100
#: Number of hierarchical hypersparse matrix instances at the headline point.
PAPER_HEADLINE_INSTANCES = 31_000
#: Single-instance rate quoted in the abstract ("over 1,000,000 updates per second").
PAPER_SINGLE_INSTANCE_RATE = 1_000_000


@dataclass(frozen=True)
class PublishedSeries:
    """One published rate-vs-servers curve.

    Attributes
    ----------
    name:
        System label as it appears in Figure 2.
    servers:
        Number of server nodes for each published point.
    rates:
        Updates per second at each point.
    citation:
        Reference in the paper's bibliography.
    measured_here:
        False for literature numbers; True for series our benchmarks produce.
    """

    name: str
    servers: Tuple[int, ...]
    rates: Tuple[float, ...]
    citation: str
    measured_here: bool = False

    def rate_at(self, nservers: int) -> float:
        """Log-log interpolated/extrapolated rate at ``nservers``."""
        s = np.asarray(self.servers, dtype=np.float64)
        r = np.asarray(self.rates, dtype=np.float64)
        if s.size == 1:
            # Assume linear weak scaling from the single published point.
            return float(r[0] * nservers / s[0])
        logs = np.log10(s)
        logr = np.log10(r)
        slope = np.polyfit(logs, logr, 1)
        return float(10 ** np.polyval(slope, np.log10(nservers)))

    @property
    def peak_rate(self) -> float:
        """Largest published rate in the series."""
        return float(max(self.rates))


_SERIES: Dict[str, PublishedSeries] = {
    "hierarchical_graphblas_paper": PublishedSeries(
        name="Hierarchical GraphBLAS (paper)",
        servers=(1, 8, 64, 256, 1100),
        rates=(7.0e7, 5.5e8, 4.4e9, 1.8e10, 7.5e10),
        citation="this paper (Kepner et al. 2020), Fig. 2",
    ),
    "hierarchical_d4m": PublishedSeries(
        name="Hierarchical D4M",
        servers=(1, 8, 64, 256, 1100),
        rates=(2.0e6, 1.5e7, 1.2e8, 4.6e8, 1.9e9),
        citation="[24] Kepner et al., HPEC 2019 (1.9 billion updates/s)",
    ),
    "accumulo_d4m": PublishedSeries(
        name="Accumulo D4M",
        servers=(1, 8, 64, 216),
        rates=(6.0e5, 4.0e6, 3.0e7, 1.0e8),
        citation="[25] Kepner et al., HPEC 2014 (100,000,000 inserts/s)",
    ),
    "scidb_d4m": PublishedSeries(
        name="SciDB D4M",
        servers=(1, 4, 16),
        rates=(2.0e5, 6.0e5, 1.5e6),
        citation="[26] Samsi et al., HPEC 2016",
    ),
    "accumulo": PublishedSeries(
        name="Accumulo",
        servers=(1, 8, 100),
        rates=(1.0e5, 8.0e5, 1.0e7),
        citation="[27] Sen et al., IEEE BigData 2013",
    ),
    "oracle_tpcc": PublishedSeries(
        name="Oracle (TPC-C)",
        servers=(1, 8, 30),
        rates=(5.0e4, 2.5e5, 5.0e5),
        citation="Oracle TPC-C benchmark results (as plotted in Fig. 2)",
    ),
    "cratedb": PublishedSeries(
        name="CrateDB",
        servers=(1, 8, 32),
        rates=(8.0e4, 6.0e5, 3.8e6),
        citation="[28] CrateDB big-cluster ingest blog, 2016",
    ),
}


def published_series() -> Dict[str, PublishedSeries]:
    """All Figure 2 reference series, keyed by a short identifier."""
    return dict(_SERIES)


def figure2_reference_rows(servers: Sequence[int] = (1, 8, 64, 256, 1100)) -> List[dict]:
    """The Figure 2 reference table: one row per (system, server count).

    Used by the benchmark harness and the CLI to print the published curves
    next to the locally measured ones.
    """
    rows = []
    for key, series in _SERIES.items():
        for n in servers:
            rows.append(
                {
                    "system": series.name,
                    "servers": int(n),
                    "updates_per_second": series.rate_at(int(n)),
                    "source": "published",
                    "citation": series.citation,
                }
            )
    return rows
