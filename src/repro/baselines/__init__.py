"""Baseline ingest systems used in the Figure 2 comparison.

* :class:`FlatGraphBLASIngestor` — a single hypersparse matrix, no hierarchy;
* :class:`FlatD4MIngestor` / :class:`HierarchicalD4MIngestor` — D4M
  associative-array ingest, flat and hierarchical (the paper's prior work);
* :class:`SortedTableStore` — Accumulo-style LSM (memtable + SSTable) ingest;
* :class:`ChunkedArrayStore` — SciDB-style chunked-array ingest;
* :mod:`~repro.baselines.published` — the published rate curves from the
  systems we cannot run offline (Accumulo clusters, CrateDB, Oracle TPC-C).
"""

from .arraydb import ChunkedArrayStore
from .d4m_baselines import FlatD4MIngestor, HierarchicalD4MIngestor
from .flat_graphblas import FlatGraphBLASIngestor
from .published import (
    PAPER_HEADLINE_RATE,
    PAPER_HEADLINE_SERVERS,
    PublishedSeries,
    figure2_reference_rows,
    published_series,
)
from .sorted_table import SortedRun, SortedTableStore

__all__ = [
    "FlatGraphBLASIngestor",
    "FlatD4MIngestor",
    "HierarchicalD4MIngestor",
    "SortedTableStore",
    "SortedRun",
    "ChunkedArrayStore",
    "PublishedSeries",
    "published_series",
    "figure2_reference_rows",
    "PAPER_HEADLINE_RATE",
    "PAPER_HEADLINE_SERVERS",
]
