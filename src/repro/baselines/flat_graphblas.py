"""Flat (non-hierarchical) GraphBLAS ingest baseline.

The control case for the paper's central comparison: every update batch is
merged directly into one large hypersparse matrix.  As the matrix grows, each
merge rewrites the entire coordinate arrays, so the per-update cost grows with
the accumulated state — precisely the "enormous pressure on the memory
hierarchy" the paper's hierarchical layering removes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphblas import Matrix, binary
from ..graphblas.binaryop import BinaryOp

__all__ = ["FlatGraphBLASIngestor"]


class FlatGraphBLASIngestor:
    """Accumulates every update straight into a single hypersparse matrix.

    Implements the same ``update(rows, cols, values)`` protocol as
    :class:`~repro.core.HierarchicalMatrix` so the two can be benchmarked by
    the identical :class:`~repro.workloads.IngestSession` harness.

    Parameters
    ----------
    nrows, ncols, dtype:
        Dimensions and value type of the accumulated matrix.
    accum:
        Operator merging duplicate coordinates (default ``plus``).
    """

    def __init__(
        self,
        nrows: int = 2 ** 64,
        ncols: int = 2 ** 64,
        dtype="fp64",
        *,
        accum: Optional[BinaryOp] = None,
    ):
        self._matrix = Matrix(dtype, nrows, ncols, name="flat")
        self._accum = accum if accum is not None else binary.plus
        self._total_updates = 0
        self._element_writes = 0

    @property
    def matrix(self) -> Matrix:
        """The accumulated matrix."""
        return self._matrix

    @property
    def total_updates(self) -> int:
        """Raw element updates submitted so far."""
        return self._total_updates

    @property
    def element_writes(self) -> int:
        """Total elements rewritten across all merges (the memory-pressure proxy).

        Each batch merge rewrites the whole accumulated matrix, so this grows
        quadratically with the number of batches — compare with
        ``HierarchicalMatrix.stats.element_writes``.
        """
        return self._element_writes

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)`` of the accumulated matrix."""
        return self._matrix.shape

    def update(self, rows, cols, values=1) -> "FlatGraphBLASIngestor":
        """Merge one batch directly into the accumulated matrix."""
        n = np.asarray(rows).size
        self._matrix.build(rows, cols, values, dup_op=self._accum)
        self._total_updates += int(n)
        # The union merge touches every stored entry plus the batch.
        self._element_writes += self._matrix.nvals
        return self

    def materialize(self) -> Matrix:
        """Return the accumulated matrix (already materialised by construction)."""
        return self._matrix

    def clear(self) -> "FlatGraphBLASIngestor":
        """Drop all accumulated state."""
        self._matrix.clear()
        self._total_updates = 0
        self._element_writes = 0
        return self
