"""A minimal LSM-tree sorted-table store emulating Accumulo-style ingest.

Figure 2 compares against Apache Accumulo (both raw and through D4M).
Accumulo ingests key/value mutations into an in-memory *memtable*; when the
memtable exceeds a threshold it is sorted and flushed to an immutable *SSTable*
(tablet file), and background *compactions* merge SSTables together.  This
module implements that write path in-process so the comparison can run
offline: the memory/merge behaviour (memtable inserts cheap, flushes and
compactions rewriting sorted runs) is what determines the ingest-rate shape,
and that is preserved.

It is intentionally *not* a full database — no WAL durability, no tablet
splitting, no server RPC — because only the ingest cost model matters for the
reproduction (documented in DESIGN.md as a substitution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["SortedRun", "SortedTableStore"]


@dataclass
class SortedRun:
    """One immutable sorted run (SSTable): parallel key/value arrays sorted by key."""

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    @property
    def size(self) -> int:
        """Number of entries in the run."""
        return int(self.rows.size)


class SortedTableStore:
    """An in-process LSM-tree key/value store with an Accumulo-like write path.

    Parameters
    ----------
    memtable_limit:
        Number of mutations buffered before a flush to an immutable sorted run.
    compaction_fanin:
        Number of sorted runs that triggers a (full) compaction merging them.

    Notes
    -----
    Keys are (row, col) coordinate pairs and values are summed on merge, so the
    store computes the same traffic matrix a GraphBLAS ingest does — only with
    database-style data movement.
    """

    def __init__(self, *, memtable_limit: int = 100_000, compaction_fanin: int = 8):
        if memtable_limit <= 0:
            raise ValueError("memtable_limit must be positive")
        if compaction_fanin < 2:
            raise ValueError("compaction_fanin must be at least 2")
        self.memtable_limit = int(memtable_limit)
        self.compaction_fanin = int(compaction_fanin)
        self._mem_rows: List[np.ndarray] = []
        self._mem_cols: List[np.ndarray] = []
        self._mem_vals: List[np.ndarray] = []
        self._mem_count = 0
        self._runs: List[SortedRun] = []
        self._total_updates = 0
        self._flushes = 0
        self._compactions = 0
        self._bytes_rewritten = 0

    # ------------------------------------------------------------------ #

    @property
    def total_updates(self) -> int:
        """Raw mutations submitted."""
        return self._total_updates

    @property
    def num_runs(self) -> int:
        """Number of immutable sorted runs currently on 'disk'."""
        return len(self._runs)

    @property
    def flushes(self) -> int:
        """Number of memtable flushes performed."""
        return self._flushes

    @property
    def compactions(self) -> int:
        """Number of compactions performed."""
        return self._compactions

    @property
    def entries_rewritten(self) -> int:
        """Total entries rewritten by flushes and compactions (write amplification proxy)."""
        return self._bytes_rewritten

    # ------------------------------------------------------------------ #

    def update(self, rows, cols, values=1) -> "SortedTableStore":
        """Ingest a batch of mutations (the Accumulo BatchWriter path)."""
        r = np.asarray(rows, dtype=np.uint64).ravel()
        c = np.asarray(cols, dtype=np.uint64).ravel()
        if np.isscalar(values):
            v = np.full(r.size, values, dtype=np.float64)
        else:
            v = np.asarray(values, dtype=np.float64).ravel()
        self._mem_rows.append(r)
        self._mem_cols.append(c)
        self._mem_vals.append(v)
        self._mem_count += r.size
        self._total_updates += int(r.size)
        if self._mem_count >= self.memtable_limit:
            self.flush()
        return self

    put = update

    def flush(self) -> None:
        """Sort the memtable and write it out as an immutable run."""
        if self._mem_count == 0:
            return
        rows = np.concatenate(self._mem_rows)
        cols = np.concatenate(self._mem_cols)
        vals = np.concatenate(self._mem_vals)
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        rows, cols, vals = self._combine_sorted(rows, cols, vals)
        self._runs.append(SortedRun(rows, cols, vals))
        self._bytes_rewritten += int(rows.size)
        self._flushes += 1
        self._mem_rows.clear()
        self._mem_cols.clear()
        self._mem_vals.clear()
        self._mem_count = 0
        if len(self._runs) >= self.compaction_fanin:
            self.compact()

    @staticmethod
    def _combine_sorted(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray):
        """Sum duplicate keys in lexsorted arrays (Accumulo summing combiner)."""
        if rows.size == 0:
            return rows, cols, vals
        new_group = np.concatenate(
            ([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1]))
        )
        starts = np.flatnonzero(new_group)
        summed = np.add.reduceat(vals, starts)
        return rows[starts], cols[starts], summed

    def compact(self) -> None:
        """Merge every sorted run into one (a full major compaction)."""
        if len(self._runs) <= 1:
            return
        rows = np.concatenate([r.rows for r in self._runs])
        cols = np.concatenate([r.cols for r in self._runs])
        vals = np.concatenate([r.values for r in self._runs])
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        rows, cols, vals = self._combine_sorted(rows, cols, vals)
        self._runs = [SortedRun(rows, cols, vals)]
        self._bytes_rewritten += int(rows.size)
        self._compactions += 1

    # ------------------------------------------------------------------ #

    def scan(self, row: int, col: int) -> Optional[float]:
        """Point lookup summing the memtable and every run (Accumulo scan semantics)."""
        total = 0.0
        found = False
        key_r, key_c = np.uint64(row), np.uint64(col)
        for rows, cols, vals in zip(self._mem_rows, self._mem_cols, self._mem_vals):
            hit = (rows == key_r) & (cols == key_c)
            if np.any(hit):
                total += float(vals[hit].sum())
                found = True
        for run in self._runs:
            lo = np.searchsorted(run.rows, key_r, side="left")
            hi = np.searchsorted(run.rows, key_r, side="right")
            if lo == hi:
                continue
            sub = slice(lo, hi)
            hit = run.cols[sub] == key_c
            if np.any(hit):
                total += float(run.values[sub][hit].sum())
                found = True
        return total if found else None

    def to_triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise the full store as summed coordinate triples."""
        self.flush()
        self.compact()
        if not self._runs:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty.copy(), np.empty(0, dtype=np.float64)
        run = self._runs[0]
        return run.rows.copy(), run.cols.copy(), run.values.copy()

    @property
    def nvals(self) -> int:
        """Distinct keys currently stored (forces a flush+compaction)."""
        return int(self.to_triples()[0].size)
