"""D4M associative-array ingest baselines (flat and hierarchical).

Figure 2 of the paper compares hierarchical GraphBLAS against the prior D4M
results: "Hierarchical D4M" (Kepner et al. 2019, 1.9 billion updates/s) and
"Accumulo D4M" / "SciDB D4M" (D4M bound to external databases).  These classes
provide the in-memory D4M ingest paths with the same ``update`` protocol as the
GraphBLAS ingestors, so the relative cost of string-keyed associative arrays
versus integer-indexed hypersparse matrices is measured like-for-like.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core import HierarchicalAssoc
from ..core.policy import CutPolicy
from ..d4m import Assoc

__all__ = ["FlatD4MIngestor", "HierarchicalD4MIngestor"]


def _keys_from_ints(values: np.ndarray) -> list:
    """Render integer coordinates as zero-padded strings (D4M sorts keys lexically)."""
    return [f"{int(v):020d}" for v in np.asarray(values).ravel()]


class FlatD4MIngestor:
    """Adds every batch directly into one growing associative array."""

    def __init__(self) -> None:
        self._assoc = Assoc.empty()
        self._total_updates = 0

    @property
    def assoc(self) -> Assoc:
        """The accumulated associative array."""
        return self._assoc

    @property
    def total_updates(self) -> int:
        """Raw element updates submitted so far."""
        return self._total_updates

    def update(self, rows, cols, values=1) -> "FlatD4MIngestor":
        """Convert the batch to string keys and add it into the accumulated Assoc."""
        row_keys = _keys_from_ints(rows)
        col_keys = _keys_from_ints(cols)
        if np.isscalar(values):
            vals = np.full(len(row_keys), values, dtype=np.float64)
        else:
            vals = np.asarray(values, dtype=np.float64)
        batch = Assoc(row_keys, col_keys, vals)
        self._assoc = self._assoc + batch if self._assoc.nnz else batch
        self._total_updates += len(row_keys)
        return self

    def materialize(self) -> Assoc:
        """Return the accumulated associative array."""
        return self._assoc

    def clear(self) -> "FlatD4MIngestor":
        """Drop all accumulated state."""
        self._assoc = Assoc.empty()
        self._total_updates = 0
        return self


class HierarchicalD4MIngestor:
    """The paper's closest prior system: hierarchical D4M associative arrays.

    Parameters
    ----------
    cuts / policy:
        Cut configuration forwarded to :class:`~repro.core.HierarchicalAssoc`.
    """

    def __init__(self, *, cuts: Optional[Sequence[int]] = None, policy: Optional[CutPolicy] = None):
        kwargs = {}
        if cuts is not None:
            kwargs["cuts"] = cuts
        if policy is not None:
            kwargs["policy"] = policy
        self._hier = HierarchicalAssoc(**kwargs)
        self._total_updates = 0

    @property
    def hierarchy(self) -> HierarchicalAssoc:
        """The underlying hierarchical associative array."""
        return self._hier

    @property
    def stats(self):
        """Update statistics of the hierarchy."""
        return self._hier.stats

    @property
    def total_updates(self) -> int:
        """Raw element updates submitted so far."""
        return self._total_updates

    def update(self, rows, cols, values=1) -> "HierarchicalD4MIngestor":
        """Convert the batch to string keys and push it through the cascade."""
        row_keys = _keys_from_ints(rows)
        col_keys = _keys_from_ints(cols)
        if np.isscalar(values):
            vals = np.full(len(row_keys), values, dtype=np.float64)
        else:
            vals = np.asarray(values, dtype=np.float64)
        self._hier.update(row_keys, col_keys, vals)
        self._total_updates += len(row_keys)
        return self

    def materialize(self) -> Assoc:
        """Materialise the logical associative array."""
        return self._hier.materialize()

    def clear(self) -> "HierarchicalD4MIngestor":
        """Drop all accumulated state."""
        self._hier.clear()
        self._total_updates = 0
        return self
