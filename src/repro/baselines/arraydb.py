"""A minimal chunked array store emulating SciDB-style ingest.

SciDB stores arrays as a grid of fixed-size *chunks*; loading coordinate data
means routing each cell to its chunk, rewriting that chunk, and updating the
chunk map.  The "SciDB D4M" series in Figure 2 ingests traffic matrices through
that path.  This emulation reproduces the chunk-routing write path in-process
(documented as a substitution in DESIGN.md): the cost of ingest is dominated by
re-sorting and rewriting chunks, which is what makes its curve sit well below
the GraphBLAS ones.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ChunkedArrayStore"]


class ChunkedArrayStore:
    """An in-process chunked sparse array with SciDB-like ingest behaviour.

    Parameters
    ----------
    chunk_size:
        Edge length of the (logical) square chunks; coordinates are routed to
        chunk ``(row // chunk_size, col // chunk_size)``.

    Notes
    -----
    Each chunk keeps its cells as sorted coordinate arrays.  Every batch that
    touches a chunk rewrites that chunk completely — the redimension/store
    behaviour of an array database — so hot chunks are rewritten over and over,
    which is the write-amplification signature this baseline contributes to the
    Figure 2 comparison.
    """

    def __init__(self, *, chunk_size: int = 2 ** 20):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = int(chunk_size)
        self._chunks: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._total_updates = 0
        self._cells_rewritten = 0
        self._chunk_writes = 0

    @property
    def total_updates(self) -> int:
        """Raw cell updates submitted."""
        return self._total_updates

    @property
    def num_chunks(self) -> int:
        """Number of materialised chunks."""
        return len(self._chunks)

    @property
    def cells_rewritten(self) -> int:
        """Total cells rewritten across all chunk stores (write amplification proxy)."""
        return self._cells_rewritten

    @property
    def chunk_writes(self) -> int:
        """Number of chunk rewrite operations."""
        return self._chunk_writes

    def update(self, rows, cols, values=1) -> "ChunkedArrayStore":
        """Ingest a batch of cells, routing each to its chunk and rewriting the chunk."""
        r = np.asarray(rows, dtype=np.uint64).ravel()
        c = np.asarray(cols, dtype=np.uint64).ravel()
        if np.isscalar(values):
            v = np.full(r.size, values, dtype=np.float64)
        else:
            v = np.asarray(values, dtype=np.float64).ravel()
        self._total_updates += int(r.size)
        size = np.uint64(self.chunk_size)
        chunk_r = (r // size).astype(np.int64)
        chunk_c = (c // size).astype(np.int64)
        # Group the batch by destination chunk.
        order = np.lexsort((chunk_c, chunk_r))
        r, c, v = r[order], c[order], v[order]
        chunk_r, chunk_c = chunk_r[order], chunk_c[order]
        boundaries = np.flatnonzero(
            np.concatenate(
                ([True], (chunk_r[1:] != chunk_r[:-1]) | (chunk_c[1:] != chunk_c[:-1]))
            )
        )
        ends = np.append(boundaries[1:], r.size)
        for start, stop in zip(boundaries, ends):
            key = (int(chunk_r[start]), int(chunk_c[start]))
            self._write_chunk(key, r[start:stop], c[start:stop], v[start:stop])
        return self

    def _write_chunk(self, key, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        """Merge new cells into one chunk, rewriting the whole chunk store."""
        if key in self._chunks:
            old_r, old_c, old_v = self._chunks[key]
            rows = np.concatenate([old_r, rows])
            cols = np.concatenate([old_c, cols])
            vals = np.concatenate([old_v, vals])
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        new_group = np.concatenate(
            ([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1]))
        )
        starts = np.flatnonzero(new_group)
        rows, cols = rows[starts], cols[starts]
        vals = np.add.reduceat(vals, starts)
        self._chunks[key] = (rows, cols, vals)
        self._cells_rewritten += int(rows.size)
        self._chunk_writes += 1

    def get(self, row: int, col: int) -> Optional[float]:
        """Point lookup."""
        key = (int(row) // self.chunk_size, int(col) // self.chunk_size)
        chunk = self._chunks.get(key)
        if chunk is None:
            return None
        rows, cols, vals = chunk
        lo = np.searchsorted(rows, np.uint64(row), side="left")
        hi = np.searchsorted(rows, np.uint64(row), side="right")
        if lo == hi:
            return None
        hit = cols[lo:hi] == np.uint64(col)
        if not np.any(hit):
            return None
        return float(vals[lo:hi][hit][0])

    def to_triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise every chunk as one set of coordinate triples."""
        if not self._chunks:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty.copy(), np.empty(0, dtype=np.float64)
        rows = np.concatenate([c[0] for c in self._chunks.values()])
        cols = np.concatenate([c[1] for c in self._chunks.values()])
        vals = np.concatenate([c[2] for c in self._chunks.values()])
        order = np.lexsort((cols, rows))
        return rows[order], cols[order], vals[order]

    @property
    def nvals(self) -> int:
        """Distinct cells stored."""
        return sum(c[0].size for c in self._chunks.values())
